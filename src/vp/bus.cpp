#include "vp/bus.hpp"

#include <cstring>

#include "common/strings.hpp"

namespace s4e::vp {

void Bus::add_ram(u32 base, u32 size) {
  S4E_CHECK_MSG(size > 0, "RAM region must be non-empty");
  RamRegion region;
  region.base = base;
  region.bytes.assign(size, 0);
  ram_.push_back(std::move(region));
}

void Bus::add_device(u32 base, u32 size, std::unique_ptr<Device> device) {
  S4E_CHECK_MSG(device != nullptr, "null device");
  devices_.push_back(DeviceMapping{base, size, std::move(device)});
}

Bus::RamRegion* Bus::find_ram(u32 address, u32 size) noexcept {
  for (auto& region : ram_) {
    if (address >= region.base && address + size <= region.end() &&
        address + size >= address) {
      return &region;
    }
  }
  return nullptr;
}

const Bus::RamRegion* Bus::find_ram(u32 address, u32 size) const noexcept {
  return const_cast<Bus*>(this)->find_ram(address, size);
}

Bus::DeviceMapping* Bus::find_device(u32 address) noexcept {
  for (auto& mapping : devices_) {
    if (address >= mapping.base && address < mapping.base + mapping.size) {
      return &mapping;
    }
  }
  return nullptr;
}

Result<BusRead> Bus::read(u32 address, unsigned size) {
  if (RamRegion* region = find_ram(address, size)) {
    const std::size_t offset = address - region->base;
    u32 value = 0;
    for (unsigned i = 0; i < size; ++i) {
      value |= static_cast<u32>(region->bytes[offset + i]) << (8 * i);
    }
    return BusRead{value, false};
  }
  if (DeviceMapping* mapping = find_device(address)) {
    if (address % size != 0) {
      return Error(ErrorCode::kInvalidArgument,
                   format("misaligned MMIO read at 0x%08x", address));
    }
    S4E_TRY(value, mapping->device->read(address - mapping->base, size));
    return BusRead{value, true};
  }
  return Error(ErrorCode::kOutOfRange,
               format("load access fault at 0x%08x", address));
}

Result<bool> Bus::write(u32 address, unsigned size, u32 value) {
  if (RamRegion* region = find_ram(address, size)) {
    const std::size_t offset = address - region->base;
    for (unsigned i = 0; i < size; ++i) {
      region->bytes[offset + i] = static_cast<u8>(value >> (8 * i));
    }
    return false;
  }
  if (DeviceMapping* mapping = find_device(address)) {
    if (address % size != 0) {
      return Error(ErrorCode::kInvalidArgument,
                   format("misaligned MMIO write at 0x%08x", address));
    }
    S4E_TRY_STATUS(mapping->device->write(address - mapping->base, size, value));
    return true;
  }
  return Error(ErrorCode::kOutOfRange,
               format("store access fault at 0x%08x", address));
}

Result<u32> Bus::fetch_word(u32 address) {
  if (const RamRegion* region = find_ram(address, 4)) {
    const std::size_t offset = address - region->base;
    u32 value = 0;
    for (unsigned i = 0; i < 4; ++i) {
      value |= static_cast<u32>(region->bytes[offset + i]) << (8 * i);
    }
    return value;
  }
  return Error(ErrorCode::kOutOfRange,
               format("instruction access fault at 0x%08x", address));
}

Result<u32> Bus::fetch_half(u32 address) {
  if (const RamRegion* region = find_ram(address, 2)) {
    const std::size_t offset = address - region->base;
    return static_cast<u32>(region->bytes[offset]) |
           (static_cast<u32>(region->bytes[offset + 1]) << 8);
  }
  return Error(ErrorCode::kOutOfRange,
               format("instruction access fault at 0x%08x", address));
}

Status Bus::ram_read(u32 address, void* buffer, u32 size) const {
  const RamRegion* region = find_ram(address, size);
  if (region == nullptr) {
    return Error(ErrorCode::kOutOfRange,
                 format("RAM read outside RAM at 0x%08x", address));
  }
  std::memcpy(buffer, region->bytes.data() + (address - region->base), size);
  return Status();
}

Status Bus::ram_write(u32 address, const void* buffer, u32 size) {
  RamRegion* region = find_ram(address, size);
  if (region == nullptr) {
    return Error(ErrorCode::kOutOfRange,
                 format("RAM write outside RAM at 0x%08x", address));
  }
  std::memcpy(region->bytes.data() + (address - region->base), buffer, size);
  return Status();
}

bool Bus::is_ram(u32 address, u32 size) const noexcept {
  return find_ram(address, size) != nullptr;
}

void Bus::tick(u64 now) {
  for (auto& mapping : devices_) mapping.device->tick(now);
}

Device* Bus::device_at(u32 base) noexcept {
  for (auto& mapping : devices_) {
    if (mapping.base == base) return mapping.device.get();
  }
  return nullptr;
}

}  // namespace s4e::vp
