file(REMOVE_RECURSE
  "CMakeFiles/s4e-qta.dir/s4e_qta.cpp.o"
  "CMakeFiles/s4e-qta.dir/s4e_qta.cpp.o.d"
  "s4e-qta"
  "s4e-qta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-qta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
