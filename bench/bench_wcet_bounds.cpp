// E3 — the QTA result table: for every analyzable workload, the three
// ordered timelines
//     observed cycles <= WC(executed path) <= static WCET bound
// and the pessimism ratios. This regenerates the core table of the QTA tool
// demo (absolute numbers depend on the timing model, the *ordering* and the
// shape of the ratios are the reproducible result).
#include <cstdio>

#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

int main() {
  using namespace s4e;
  core::Ecosystem ecosystem;

  std::printf("[E3] WCET bounds vs execution (timing model: default edge "
              "SoC)\n\n");
  std::printf("%-12s %10s %12s %12s %8s %8s  %s\n", "workload", "observed",
              "wc-path", "static-wcet", "path/obs", "wcet/path", "chain");
  std::printf("%s\n", std::string(76, '-').c_str());

  bool all_hold = true;
  for (const core::Workload& workload : core::standard_workloads()) {
    if (!workload.wcet_analyzable) {
      std::printf("%-12s %10s\n", workload.name.c_str(), "(not analyzable)");
      continue;
    }
    auto program = ecosystem.build(workload);
    S4E_CHECK(program.ok());
    auto outcome = ecosystem.run_qta(*program, workload.name);
    if (!outcome.ok()) {
      std::printf("%-12s analysis failed: %s\n", workload.name.c_str(),
                  outcome.error().to_string().c_str());
      all_hold = false;
      continue;
    }
    const qta::QtaReport& report = outcome->report;
    const bool holds =
        report.observed_cycles <= report.wc_path_cycles &&
        report.wc_path_cycles <= report.static_bound &&
        !report.bound_violated && report.unknown_blocks == 0;
    all_hold = all_hold && holds;
    std::printf("%-12s %10llu %12llu %12llu %8.2f %8.2f  %s\n",
                workload.name.c_str(),
                static_cast<unsigned long long>(report.observed_cycles),
                static_cast<unsigned long long>(report.wc_path_cycles),
                static_cast<unsigned long long>(report.static_bound),
                report.path_over_observed(), report.bound_over_path(),
                holds ? "holds" : "VIOLATED");
  }

  std::printf("\nper-function static WCETs (interprocedural summaries):\n");
  for (const char* name : {"fir", "lock_ctrl"}) {
    auto workload = core::find_workload(name);
    S4E_CHECK(workload.ok());
    auto program = ecosystem.build(*workload);
    S4E_CHECK(program.ok());
    auto analysis = ecosystem.analyze_wcet(*program, name);
    S4E_CHECK(analysis.ok());
    for (const auto& fn : analysis->functions) {
      std::printf("  %-12s :: %-14s blocks=%2u loops=%u wcet=%llu\n", name,
                  fn.name.c_str(), fn.block_count, fn.loop_count,
                  static_cast<unsigned long long>(fn.wcet));
    }
  }

  std::printf("\n[E3] timeline chain holds for all workloads: %s\n",
              all_hold ? "YES" : "NO");
  return all_hold ? 0 : 1;
}
