#include "testgen/testgen.hpp"

#include "common/strings.hpp"
#include "isa/registers.hpp"

namespace s4e::testgen {

namespace {

using isa::Format;
using isa::Op;
using isa::OpClass;
using isa::OpInfo;

constexpr const char* kExit0 = "    li a0, 0\n    li a7, 93\n    ecall\n";
constexpr const char* kExit1 = "    li a0, 1\n    li a7, 93\n    ecall\n";

std::string reg_name(unsigned index) {
  return std::string(isa::gpr_abi_name(index));
}

}  // namespace

// ---------------------------------------------------------------------------
// Architectural-style directed tests.

std::vector<GeneratedProgram> architectural_suite() {
  std::vector<GeneratedProgram> suite;

  // Golden results for a representative subset (hand-computed); tests with
  // a golden value are genuinely self-checking, the rest are
  // execution-directed (the metric counts execution, as in the paper).
  struct Golden {
    Op op;
    i64 a;        // rs1 value
    i64 b;        // rs2 value / immediate
    u32 expected; // rd after execution
  };
  const Golden goldens[] = {
      {Op::kAdd, 7, -3, 4},
      {Op::kSub, 7, 10, static_cast<u32>(-3)},
      {Op::kXor, 0xff00, 0x0ff0, 0xf0f0},
      {Op::kOr, 0xf0, 0x0f, 0xff},
      {Op::kAnd, 0xff, 0x0f, 0x0f},
      {Op::kSll, 1, 12, 1u << 12},
      {Op::kSrl, 0x80000000, 4, 0x08000000},
      {Op::kSra, static_cast<i64>(0x80000000u), 4, 0xf8000000},
      {Op::kSlt, -1, 1, 1},
      {Op::kSltu, static_cast<i64>(0xffffffffu), 1, 0},
      {Op::kMul, -7, 3, static_cast<u32>(-21)},
      {Op::kMulh, static_cast<i64>(0x7fffffff), 2, 0},
      {Op::kMulhu, static_cast<i64>(0x80000000u), 2, 1},
      {Op::kDiv, -20, 3, static_cast<u32>(-6)},
      {Op::kDivu, 20, 3, 6},
      {Op::kRem, -20, 3, static_cast<u32>(-2)},
      {Op::kRemu, 20, 3, 2},
  };

  auto golden_for = [&](Op op) -> const Golden* {
    for (const Golden& golden : goldens) {
      if (golden.op == op) return &golden;
    }
    return nullptr;
  };

  for (unsigned i = 0; i < isa::kOpCount; ++i) {
    const OpInfo& info = isa::op_table()[i];
    const Op op = static_cast<Op>(i);
    const std::string m(info.mnemonic);
    std::string body;
    switch (info.format) {
      case Format::kR: {
        if (info.op_class == OpClass::kAmo) {
          // Atomics need a real RAM target; each test is self-checking
          // against the known initial memory word.
          body += "    la a1, buf\n    li a2, 5\n    li a4, 13\n";
          body += "    sw a4, 0(a1)\n";
          if (op == Op::kLrW) {
            body += "    lr.w a3, (a1)\n";
            body += "    bne a3, a4, fail\n";
          } else if (op == Op::kScW) {
            body += "    lr.w a3, (a1)\n";
            body += "    sc.w a3, a2, (a1)\n";
            body += "    bnez a3, fail\n";  // paired SC must succeed
          } else {
            body += format("    %s a3, a2, (a1)\n", m.c_str());
            body += "    bne a3, a4, fail\n";  // rd = old memory value
          }
          body += kExit0;
          body += "fail:\n";
          body += kExit1;
          body += ".data\nbuf:\n    .word 0\n";
          break;
        }
        if (const Golden* golden = golden_for(op)) {
          body += format("    li a1, %lld\n    li a2, %lld\n",
                         static_cast<long long>(golden->a),
                         static_cast<long long>(golden->b));
          body += format("    %s a3, a1, a2\n", m.c_str());
          body += format("    li a4, 0x%x\n", golden->expected);
          body += "    bne a3, a4, fail\n";
        } else {
          body += "    li a1, 13\n    li a2, 5\n";
          body += format("    %s a3, a1, a2\n", m.c_str());
        }
        body += kExit0;
        body += "fail:\n";
        body += kExit1;
        break;
      }
      case Format::kI: {
        if (info.op_class == OpClass::kLoad) {
          body += "    la a1, data\n";
          body += format("    %s a3, 0(a1)\n", m.c_str());
          body += kExit0;
          body += ".data\ndata:\n    .word 0x80c1f3a5\n";
          break;
        }
        if (op == Op::kJalr) {
          body += "    la a1, target\n";
          body += "    jalr ra, 0(a1)\n";
          body += kExit1;  // must not fall through
          body += "target:\n";
          body += kExit0;
          break;
        }
        if (op == Op::kEcall) {
          body += kExit0;  // the exit convention itself
          break;
        }
        body += "    li a1, 100\n";
        body += format("    %s a3, a1, -7\n", m.c_str());
        body += kExit0;
        break;
      }
      case Format::kIShift: {
        body += "    li a1, 0x00f0f000\n";
        body += format("    %s a3, a1, 5\n", m.c_str());
        body += kExit0;
        break;
      }
      case Format::kS: {
        body = "    la a1, buf\n    li a2, 0x12345678\n";
        body += format("    %s a2, 0(a1)\n", m.c_str());
        body += "    lw a3, 0(a1)\n";
        body += kExit0;
        body += ".data\nbuf:\n    .word 0\n";
        break;
      }
      case Format::kB: {
        // Arrange the branch to be taken; falling through is a failure.
        const char* setup =
            (op == Op::kBeq)    ? "    li a1, 5\n    li a2, 5\n"
            : (op == Op::kBne)  ? "    li a1, 5\n    li a2, 6\n"
            : (op == Op::kBlt)  ? "    li a1, -5\n    li a2, 5\n"
            : (op == Op::kBge)  ? "    li a1, 5\n    li a2, -5\n"
            : (op == Op::kBltu) ? "    li a1, 5\n    li a2, -1\n"
                                : "    li a1, -1\n    li a2, 5\n";  // bgeu
        body += setup;
        body += format("    %s a1, a2, taken\n", m.c_str());
        body += kExit1;
        body += "taken:\n";
        body += kExit0;
        break;
      }
      case Format::kU: {
        body += format("    %s a3, 0x12345\n", m.c_str());
        body += kExit0;
        break;
      }
      case Format::kJ: {
        body += "    jal ra, target\n";
        body += kExit1;
        body += "target:\n";
        body += kExit0;
        break;
      }
      case Format::kCsrReg: {
        body += "    li a1, 0x55\n";
        body += format("    %s a3, mscratch, a1\n", m.c_str());
        body += kExit0;
        break;
      }
      case Format::kCsrImm: {
        body += format("    %s a3, mscratch, 21\n", m.c_str());
        body += kExit0;
        break;
      }
      case Format::kNone: {
        if (op == Op::kEbreak) {
          // A handler turns the breakpoint trap into a clean exit.
          body += "    la a1, handler\n    csrw mtvec, a1\n    ebreak\n";
          body += kExit1;
          body += "handler:\n";
          body += kExit0;
        } else if (op == Op::kMret) {
          body += "    la a1, target\n    csrw mepc, a1\n    mret\n";
          body += kExit1;
          body += "target:\n";
          body += kExit0;
        } else if (op == Op::kWfi) {
          // Timer wakes the hart; the handler exits.
          body += "    la a1, handler\n    csrw mtvec, a1\n";
          body += "    li a1, 0x2004000\n    li a2, 64\n";
          body += "    sw a2, 0(a1)\n    sw zero, 4(a1)\n";
          body += "    li a1, 128\n    csrw mie, a1\n    csrsi mstatus, 8\n";
          body += "    wfi\n";
          body += kExit1;
          body += "handler:\n";
          body += kExit0;
        } else {  // ecall handled in kI? (ecall is kNone format)
          body += kExit0;
        }
        break;
      }
      case Format::kFence: {
        body += "    fence\n";
        body += kExit0;
        break;
      }
    }
    suite.push_back(GeneratedProgram{"arch_" + m, std::move(body)});
  }
  return suite;
}

// ---------------------------------------------------------------------------
// Unit-style kernels.

std::vector<GeneratedProgram> unit_suite() {
  std::vector<GeneratedProgram> suite;

  suite.push_back(GeneratedProgram{"unit_alu", R"(
    li a1, 0x1234
    li a2, 0x0ff0
    add a3, a1, a2
    sub a4, a1, a2
    xor a5, a1, a2
    or a6, a1, a2
    and t0, a1, a2
    sll t1, a1, a2
    srl t2, a1, a2
    sra t3, a1, a2
    slt t4, a1, a2
    sltu t5, a1, a2
    addi s1, a1, -100
    slti s2, a1, 100
    sltiu s3, a1, 100
    xori s4, a1, 0x55
    ori s5, a1, 0x55
    andi s6, a1, 0x55
    slli s7, a1, 3
    srli s8, a1, 3
    srai s9, a1, 3
    lui s10, 0xabcde
    auipc s11, 0x1
    li a0, 0
    li a7, 93
    ecall
)"});

  suite.push_back(GeneratedProgram{"unit_memory", R"(
    addi sp, sp, -16
    li t3, 0x77
    sw t3, 0(sp)
    lw t4, 0(sp)
    addi sp, sp, 16
    la t0, buffer
    li t1, 0xa5c3f017
    sw t1, 0(t0)
    sh t1, 4(t0)
    sb t1, 6(t0)
    lw a1, 0(t0)
    lh a2, 4(t0)
    lhu a3, 4(t0)
    lb a4, 6(t0)
    lbu a5, 6(t0)
    li a0, 0
    li a7, 93
    ecall
.data
buffer:
    .space 32
)"});

  suite.push_back(GeneratedProgram{"unit_branches", R"(
    li s0, 3
    li s1, 7
    beq s0, s0, l1
    ebreak
l1: bne s0, s1, l2
    ebreak
l2: blt s0, s1, l3
    ebreak
l3: bge s1, s0, l4
    ebreak
l4: bltu s0, s1, l5
    ebreak
l5: bgeu s1, s0, l6
    ebreak
l6:
    li a0, 0
    li a7, 93
    ecall
)"});

  suite.push_back(GeneratedProgram{"unit_muldiv", R"(
    li s2, -1234
    li s3, 77
    mul a1, s2, s3
    mulh a2, s2, s3
    mulhsu a3, s2, s3
    mulhu a4, s2, s3
    div a5, s2, s3
    divu a6, s2, s3
    rem t4, s2, s3
    remu t5, s2, s3
    li a0, 0
    li a7, 93
    ecall
)"});

  suite.push_back(GeneratedProgram{"unit_csr", R"(
    li t2, 0x5a5a
    csrrw t3, mscratch, t2
    csrrs t4, mscratch, zero
    csrrc t5, mscratch, t2
    csrrwi t6, mscratch, 9
    csrrsi s4, mscratch, 2
    csrrci s5, mscratch, 1
    csrr s6, mcycle
    csrr s7, minstret
    csrr s8, mhartid
    li a0, 0
    li a7, 93
    ecall
)"});

  suite.push_back(GeneratedProgram{"unit_calls", R"(
    call helper
    call helper
    jal ra, helper
    li a0, 0
    li a7, 93
    ecall
helper:
    addi gp, gp, 1
    ret
)"});

  return suite;
}

// ---------------------------------------------------------------------------
// Torture-style random programs.

namespace {

class TortureGenerator {
 public:
  TortureGenerator(const TortureConfig& config, Rng rng)
      : config_(config), rng_(rng) {}

  GeneratedProgram generate(unsigned index) {
    source_.clear();
    emit_prologue();
    for (unsigned segment = 0; segment < config_.segments; ++segment) {
      emit_segment(segment);
    }
    emit_epilogue();
    return GeneratedProgram{format("torture_%03u", index), source_};
  }

 private:
  // Register pool: everything but x0 (constant), x2/sp (stack), x30 (loop
  // counter) and x31 (scratch-buffer base). ABI-style generation draws from
  // the compressible x8..x15 range three times out of four.
  unsigned pool_reg() {
    static constexpr unsigned kPool[] = {1,  3,  4,  5,  6,  7,  8,  9,
                                         10, 11, 12, 13, 14, 15, 16, 17,
                                         18, 19, 20, 21, 22, 23, 24, 25,
                                         26, 27, 28, 29};
    if (config_.abi_style && rng_.chance(3, 4)) {
      return 8 + rng_.next_below(8);
    }
    return kPool[rng_.next_below(static_cast<u32>(std::size(kPool)))];
  }

  void emit_prologue() {
    for (unsigned reg = 3; reg < 30; ++reg) {
      if (config_.abi_style && reg == 9) continue;  // s1 = scratch base
      // ABI-style code materializes mostly small constants (c.li range).
      const i32 value =
          config_.abi_style
              ? static_cast<i32>(rng_.next_in_range(-32, 31))
              : static_cast<i32>(rng_.next_u32() & 0xffff) - 0x8000;
      source_ += format("    li %s, %d\n", reg_name(reg).c_str(), value);
    }
    source_ += config_.abi_style ? "    la s1, scratch\n"
                                 : "    la t6, scratch\n";
    source_ += format("    li t5, %u\n", 2 + rng_.next_below(6));  // x30
    source_ += "outer_loop:\n";
  }

  void emit_segment(unsigned segment) {
    const std::string end_label = format("seg%u_end", segment);
    for (unsigned i = 0; i < config_.segment_length; ++i) {
      switch (rng_.next_below(10)) {
        case 0:
        case 1:
        case 2:
        case 3:
          emit_alu();
          break;
        case 4:
          if (config_.use_mul_div) {
            emit_muldiv();
          } else {
            emit_alu();
          }
          break;
        case 5:
        case 6:
          if (config_.use_memory) {
            emit_memory();
          } else {
            emit_alu();
          }
          break;
        case 7:
          if (config_.use_branches) {
            emit_branch(end_label);
          } else {
            emit_alu();
          }
          break;
        case 8:
          if (config_.use_csr) {
            emit_csr();
          } else {
            emit_alu();
          }
          break;
        default:
          emit_alu_imm();
          break;
      }
    }
    source_ += end_label + ":\n";
  }

  void emit_alu() {
    static constexpr const char* kOps[] = {"add", "sub", "xor", "or", "and",
                                           "sll", "srl", "sra", "slt", "sltu"};
    const char* op = kOps[rng_.next_below(std::size(kOps))];
    const unsigned rd = pool_reg();
    // ABI-style: two-address form (rd == rs1), the shape RVC compresses.
    const unsigned rs1 =
        config_.abi_style && rng_.chance(2, 3) ? rd : pool_reg();
    source_ += format("    %s %s, %s, %s\n", op, reg_name(rd).c_str(),
                      reg_name(rs1).c_str(), reg_name(pool_reg()).c_str());
  }

  void emit_alu_imm() {
    static constexpr const char* kOps[] = {"addi", "slti", "sltiu", "xori",
                                           "ori", "andi"};
    static constexpr const char* kShifts[] = {"slli", "srli", "srai"};
    const unsigned rd = pool_reg();
    const unsigned rs1 =
        config_.abi_style && rng_.chance(2, 3) ? rd : pool_reg();
    if (rng_.chance(1, 3)) {
      source_ += format("    %s %s, %s, %u\n",
                        kShifts[rng_.next_below(std::size(kShifts))],
                        reg_name(rd).c_str(), reg_name(rs1).c_str(),
                        rng_.next_below(32));
    } else {
      const i64 imm = config_.abi_style && rng_.chance(1, 2)
                          ? rng_.next_in_range(-32, 31)
                          : rng_.next_in_range(-2048, 2047);
      source_ += format("    %s %s, %s, %lld\n",
                        kOps[rng_.next_below(std::size(kOps))],
                        reg_name(rd).c_str(), reg_name(rs1).c_str(),
                        static_cast<long long>(imm));
    }
  }

  void emit_muldiv() {
    static constexpr const char* kOps[] = {"mul", "mulh", "mulhsu", "mulhu",
                                           "div", "divu", "rem", "remu"};
    source_ += format("    %s %s, %s, %s\n",
                      kOps[rng_.next_below(std::size(kOps))],
                      reg_name(pool_reg()).c_str(),
                      reg_name(pool_reg()).c_str(),
                      reg_name(pool_reg()).c_str());
  }

  void emit_memory() {
    static constexpr struct {
      const char* store;
      const char* load;
      unsigned align;
    } kPairs[] = {
        {"sw", "lw", 4}, {"sh", "lh", 2}, {"sh", "lhu", 2},
        {"sb", "lb", 1}, {"sb", "lbu", 1},
    };
    const auto& pair = kPairs[rng_.next_below(std::size(kPairs))];
    const unsigned offset =
        rng_.next_below(kScratchSize / pair.align) * pair.align;
    const char* base = config_.abi_style ? "s1" : "t6";
    if (rng_.chance(1, 2)) {
      source_ += format("    %s %s, %u(%s)\n", pair.store,
                        reg_name(pool_reg()).c_str(), offset, base);
    } else {
      source_ += format("    %s %s, %u(%s)\n", pair.load,
                        reg_name(pool_reg()).c_str(), offset, base);
    }
  }

  void emit_branch(const std::string& target) {
    static constexpr const char* kOps[] = {"beq", "bne", "blt",
                                           "bge", "bltu", "bgeu"};
    source_ += format("    %s %s, %s, %s\n",
                      kOps[rng_.next_below(std::size(kOps))],
                      reg_name(pool_reg()).c_str(),
                      reg_name(pool_reg()).c_str(), target.c_str());
  }

  void emit_csr() {
    switch (rng_.next_below(4)) {
      case 0:
        source_ += format("    csrrw %s, mscratch, %s\n",
                          reg_name(pool_reg()).c_str(),
                          reg_name(pool_reg()).c_str());
        break;
      case 1:
        source_ += format("    csrr %s, mcycle\n",
                          reg_name(pool_reg()).c_str());
        break;
      case 2:
        source_ += format("    csrrs %s, mscratch, %s\n",
                          reg_name(pool_reg()).c_str(),
                          reg_name(pool_reg()).c_str());
        break;
      default:
        source_ += format("    csrrwi %s, mscratch, %u\n",
                          reg_name(pool_reg()).c_str(), rng_.next_below(32));
        break;
    }
  }

  void emit_epilogue() {
    // Bounded outer loop: decrement-to-zero on x30/t5.
    source_ += "    addi t5, t5, -1\n";
    source_ += "    bnez t5, outer_loop\n";
    source_ += "    li a0, 0\n    li a7, 93\n    ecall\n";
    source_ += ".data\nscratch:\n";
    source_ += format("    .space %u\n", kScratchSize);
  }

  static constexpr unsigned kScratchSize = 64;

  TortureConfig config_;
  Rng rng_;
  std::string source_;
};

}  // namespace

std::vector<GeneratedProgram> torture_suite(const TortureConfig& config) {
  std::vector<GeneratedProgram> suite;
  Rng rng(config.seed);
  for (unsigned i = 0; i < config.programs; ++i) {
    TortureGenerator generator(config, rng.fork());
    suite.push_back(generator.generate(i));
  }
  return suite;
}

}  // namespace s4e::testgen
