# Empty dependencies file for bench_wcet_bounds.
# This may be replaced when dependencies are built.
