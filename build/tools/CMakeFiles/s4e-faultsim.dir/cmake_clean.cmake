file(REMOVE_RECURSE
  "CMakeFiles/s4e-faultsim.dir/s4e_faultsim.cpp.o"
  "CMakeFiles/s4e-faultsim.dir/s4e_faultsim.cpp.o.d"
  "s4e-faultsim"
  "s4e-faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
