# Empty dependencies file for s4e-faultsim.
# This may be replaced when dependencies are built.
