# binary search in a sorted table (annotated bound)
# expected exit code: 11

_start:
    la s0, table
    li s1, 0           # lo
    li s2, 16          # hi
    li s3, 743         # key
bs_loop:
    .loopbound 5
    bge s1, s2, notfound
    add t0, s1, s2
    srli t0, t0, 1     # mid
    slli t1, t0, 2
    add t1, t1, s0
    lw t2, 0(t1)
    beq t2, s3, found
    blt t2, s3, go_right
    mv s2, t0          # hi = mid
    j bs_loop
go_right:
    addi s1, t0, 1
    j bs_loop
found:
    mv a0, t0
    li a7, 93
    ecall
notfound:
    li a0, 255
    li a7, 93
    ecall
.data
table:
    .word 3, 17, 29, 55, 101, 190, 288, 310
    .word 402, 555, 680, 743, 800, 855, 901, 999
