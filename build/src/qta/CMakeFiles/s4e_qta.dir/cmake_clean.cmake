file(REMOVE_RECURSE
  "CMakeFiles/s4e_qta.dir/qta.cpp.o"
  "CMakeFiles/s4e_qta.dir/qta.cpp.o.d"
  "libs4e_qta.a"
  "libs4e_qta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_qta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
