file(REMOVE_RECURSE
  "libs4e_wcet.a"
)
