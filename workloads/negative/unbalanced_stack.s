# seeded defect: a callee allocates a frame and returns without releasing it
# s4e-lint must report a stack-imbalance finding for `leaky`.

_start:
    call leaky
    li a0, 0
    li a7, 93
    ecall

leaky:
    addi sp, sp, -16
    sw zero, 0(sp)
    ret                # missing `addi sp, sp, 16`
