# seeded defect: an indirect jump whose target set cannot be enumerated
# (the register comes from a CSR read). s4e-lint must report an indirect
# finding; the WCET analyzer rejects the same program.

_start:
    csrr t0, mcycle
    jalr zero, 0(t0)
    li a7, 93
    ecall
