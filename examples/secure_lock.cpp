// Security scenario demo (MBMV'19): a lock controller attached over UART.
// The memwatch plugin observes every data access non-invasively through the
// plugin API and enforces a policy: only the UART driver routine may touch
// the TX register. The benign firmware passes; the attack variant — which
// pokes the UART directly after a denied PIN — is flagged with the exact
// attacking instruction address.
//
//   $ ./examples/secure_lock [pin]      (default pin: 1234)
#include <cstdio>
#include <string>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "memwatch/memwatch.hpp"
#include "vp/machine.hpp"

namespace {

struct ScenarioResult {
  int exit_code = -1;
  std::string uart;
  std::size_t violations = 0;
  std::string report;
};

ScenarioResult run_lock(const s4e::core::Workload& workload,
                        const std::string& pin) {
  using namespace s4e;
  auto program = assembler::assemble(workload.source);
  S4E_CHECK_MSG(program.ok(), "workload must assemble");

  vp::Machine machine;
  S4E_CHECK(machine.load_program(*program).ok());
  if (!pin.empty()) machine.uart()->push_rx(pin);

  // Policy: the UART TX register may only be written by the driver routine
  // uart_puts (delimited by the uart_puts / uart_puts_end symbols).
  memwatch::Policy policy;
  memwatch::Region tx;
  tx.name = "uart-tx";
  tx.base = vp::Uart::kDefaultBase;
  tx.size = 4;
  tx.pc_lo = *program->symbol("uart_puts");
  tx.pc_hi = *program->symbol("uart_puts_end");
  policy.regions.push_back(tx);

  memwatch::MemWatchPlugin watch(policy);
  watch.attach(machine.vm_handle());

  ScenarioResult result;
  result.exit_code = machine.run().exit_code;
  result.uart = machine.uart()->tx_log();
  result.violations = watch.violations().size();
  result.report = watch.report();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4e;
  const std::string pin = argc > 1 ? argv[1] : "1234";

  auto benign = core::find_workload("lock_ctrl");
  auto attack = core::find_workload("attack_lock");
  S4E_CHECK(benign.ok() && attack.ok());

  std::printf("=== benign firmware, PIN '%s' ===\n", pin.c_str());
  auto benign_result = run_lock(*benign, pin);
  std::printf("lock says: %s(exit %d)\n", benign_result.uart.c_str(),
              benign_result.exit_code);
  std::printf("%s\n", benign_result.report.c_str());

  std::printf("=== compromised firmware (rogue UART write), no input ===\n");
  auto attack_result = run_lock(*attack, "");
  std::printf("lock says: %s(exit %d)\n", attack_result.uart.c_str(),
              attack_result.exit_code);
  std::printf("%s\n", attack_result.report.c_str());

  const bool detected =
      benign_result.violations == 0 && attack_result.violations > 0;
  std::printf("attack detected while benign run stays clean: %s\n",
              detected ? "YES" : "NO");
  return detected ? 0 : 1;
}
