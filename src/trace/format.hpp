// Binary execution-trace format — the capture side of the capture-once /
// replay-many differential timing engine (Hsu et al.: record one
// instruction-level trace, evaluate arbitrarily many timing models offline).
//
// The format is a delta-encoded event stream, not an instruction log: the
// reader maintains a PC cursor, plain straight-line instructions are
// run-length encoded (one tag + varint count for a whole basic block of
// ALU ops), control transfers carry a zigzag PC delta, and memory accesses a
// zigzag address delta against the previous access. Everything the timing
// models of vp/timing.hpp can charge for is preserved exactly:
//
//   header   magic "S4ETRACE", version, program fingerprint (FNV-1a, the
//            fleet scheme), entry PC, and the TimingParams the recording
//            run used (replaying them must land on the footer's cycle
//            count — the trace's built-in self check).
//   events   tag byte + varint payloads, terminated by kEnd:
//              kBlock        block dispatch at the cursor (== one icache
//                            probe and one tb_exec callback)
//              kRun4/kRun2   n plain base-cost instructions (RLE)
//              kJump/kBranchT/kBranchN*  control transfers (taken bit is
//                            explicit: a taken branch to the fall-through
//                            address is indistinguishable from not-taken in
//                            the bare PC stream, but trains the predictor
//                            differently)
//              kLoad*/kStore*/kAmo*      data accesses, RAM vs MMIO
//              kMul/kDiv/kCsr            latency classes (kDiv carries the
//                            dividend: the iterative divider's cost is
//                            operand-dependent)
//              kTrapInsn/kTrapFetch      synchronous traps with cause and
//                            handler target
//              kTaint        a timing-path-sensitive site (cycle CSR read,
//                            CLINT/GPIO load, interrupt, non-final wfi):
//                            the executed path could differ under another
//                            timing configuration, so replay REJECTS the
//                            whole trace, per site, loudly
//   footer   magic "S4ETFOOT", stop reason, exit code, instruction/block/
//            event counts, the recorded-configuration cycle count, and an
//            FNV-1a checksum of the event bytes. The footer is written
//            last (after an fsync-able temp file), so a truncated or
//            crashed recording is detected by its absence, not by UB.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "vp/timing.hpp"

namespace s4e::assembler {
struct Program;
}

namespace s4e::trace {

inline constexpr char kTraceMagic[8] = {'S', '4', 'E', 'T',
                                        'R', 'A', 'C', 'E'};
inline constexpr char kFooterMagic[8] = {'S', '4', 'E', 'T',
                                         'F', 'O', 'O', 'T'};
inline constexpr u32 kTraceVersion = 1;

// Event stream tags. The *4/*2 suffix is the instruction length (the cursor
// must advance by it); redirecting events carry the target delta instead.
enum class Tag : u8 {
  kEnd = 0x00,
  kBlock = 0x01,       // block dispatched at cursor (icache probe point)
  kRun4 = 0x02,        // varint n: n plain 4-byte base-cost instructions
  kRun2 = 0x03,        // varint n: 2-byte forms
  kJump = 0x04,        // varint zz(target - pc): jal/jalr
  kBranchT = 0x05,     // varint zz(target - pc): taken conditional branch
  kBranchN4 = 0x06,    // not-taken conditional branch, 4-byte form
  kBranchN2 = 0x07,    // not-taken conditional branch, 2-byte form
  kLoad4 = 0x08,       // RAM load + mem payload
  kLoad2 = 0x09,
  kStore4 = 0x0a,      // RAM store + mem payload
  kStore2 = 0x0b,
  kLoadMmio4 = 0x0c,   // MMIO load + mem payload
  kLoadMmio2 = 0x0d,
  kStoreMmio4 = 0x0e,  // MMIO store + mem payload
  kStoreMmio2 = 0x0f,
  kAmoLoad = 0x10,     // lr.w: one read access + mem payload
  kAmoStore = 0x11,    // sc.w success: one write access + mem payload
  kAmoRmw = 0x12,      // amo*.w: read-modify-write, one mem payload
  kAmoFail = 0x13,     // sc.w failure: no memory access modelled
  kMul4 = 0x14,
  kMul2 = 0x15,
  kDiv4 = 0x16,        // varint dividend (rs1 at issue)
  kDiv2 = 0x17,
  kCsr4 = 0x18,        // counter-free CSR access
  kCsr2 = 0x19,
  kSysExit = 0x1a,     // ecall exit convention (a7 = 93); trace ends
  kMret = 0x1b,        // varint zz(target - pc)
  kWfiHalt = 0x1c,     // final wfi (timer interrupts disabled); trace ends
  kTrapInsn = 0x1d,    // executed instruction ended in a synchronous trap:
                       //   u8 info (class | kTrapLen4 | kTrapHandled),
                       //   varint cause, varint zz(handler - pc) if handled
  kTrapFetch = 0x1e,   // block-head fetch/decode trap, no instruction
                       //   executed: u8 info, varint cause,
                       //   varint zz(handler - cursor) if handled
  kTaint = 0x1f,       // varint kind: timing-path-sensitive site at cursor
  kBlockAt = 0x20,     // varint zz(pc - cursor): block dispatch resync
                       //   (only follows taints — e.g. an interrupt moved
                       //   the PC somewhere the event stream cannot derive)
  kWfiSleep = 0x21,    // non-final wfi (always preceded by its kTaint:
                       //   modelled time fast-forwarded, replay refuses)
  kCount,
};

// kTrapInsn / kTrapFetch info-byte layout.
inline constexpr u8 kTrapClassMask = 0x0f;  // isa::OpClass of the insn
inline constexpr u8 kTrapLen4 = 0x20;       // 4-byte instruction form
inline constexpr u8 kTrapHandled = 0x40;    // mtvec != 0: handler entered

// Why replay must refuse a trace: the recorded path went through a site
// whose outcome depends on the timing configuration, so the same program
// could execute a *different* path under another TimingParams — replaying
// this trace under it would be fiction, not analysis.
enum class TaintKind : u8 {
  kCsrCycleRead = 0,  // rdcycle/mcycle: value is the config's cycle count
  kCsrTimeRead = 1,   // rdtime: mtime mirrors cycles
  kCsrMipRead = 2,    // MTIP is a function of cycles vs mtimecmp
  kClintLoad = 3,     // mtime/mtimecmp/msip MMIO read
  kGpioLoad = 4,      // GPIO input state is sampled at `now` (cycles)
  kClintStore = 5,    // arms timer/software interrupts (delivery is
                      // cycle-dependent)
  kWfiSleep = 6,      // non-final wfi fast-forwards modelled time
  kInterrupt = 7,     // asynchronous trap: delivery point is cycle-exact
  kCursorResync = 8,  // control flow diverged from the event stream
  kCount,
};

std::string_view to_string(TaintKind kind) noexcept;

// --- Varint codec (LEB128 + zigzag), shared by writer, reader and tests.

inline void put_varint(std::vector<u8>& out, u64 value) {
  while (value >= 0x80) {
    out.push_back(static_cast<u8>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<u8>(value));
}

inline u64 zigzag(i64 value) noexcept {
  return (static_cast<u64>(value) << 1) ^ static_cast<u64>(value >> 63);
}

inline i64 unzigzag(u64 value) noexcept {
  return static_cast<i64>(value >> 1) ^ -static_cast<i64>(value & 1);
}

// The one decoded-event shape the reader yields. Fields are valid per tag.
struct Event {
  Tag tag = Tag::kEnd;
  u32 pc = 0;        // instruction / block address (cursor at decode time)
  u32 target = 0;    // redirect target / trap handler entry
  u32 count = 0;     // kRun*: run length
  u32 length = 0;    // instruction byte length (0 for non-insn events)
  u32 dividend = 0;  // kDiv*
  u32 cause = 0;     // kTrap*
  u32 mem_addr = 0;  // data access address
  u8 mem_size = 0;   // data access size (1/2/4)
  u8 op_class = 0;   // kTrapInsn: isa::OpClass of the trapped instruction
  bool handled = false;    // kTrap*: handler entered (vs. run stopped)
  bool mem_store = false;  // data access direction
  bool mem_mmio = false;   // data access hit a device window
  TaintKind taint = TaintKind::kCsrCycleRead;
};

// Trace header: everything replay needs to refuse the wrong workload and to
// self-check against the recording run.
struct Header {
  u32 version = kTraceVersion;
  u32 flags = 0;
  u64 fingerprint = 0;  // program fingerprint (see program_fingerprint)
  u32 entry_pc = 0;
  vp::TimingParams recorded;  // the recording run's timing configuration
};

// Trace footer: counted so truncation is detected, checksummed so torn
// writes are detected.
struct Footer {
  u8 stop_reason = 0;        // vp::StopReason of the recording run
  int exit_code = 0;
  u64 instructions = 0;      // executed instructions (== replayed count)
  u64 blocks = 0;            // block dispatches (== icache probes)
  u64 mem_accesses = 0;      // data access records
  u64 taints = 0;            // taint sites (replay refuses when != 0)
  u64 recorded_cycles = 0;   // cycle count under `Header::recorded`
  u64 stream_checksum = 0;   // FNV-1a over the event-stream bytes
};

// FNV-1a (the fleet campaign-fingerprint scheme) over a program's loadable
// identity: section bases + bytes + entry PC. Used to bind a trace to the
// workload it was recorded from.
u64 program_fingerprint(const assembler::Program& program);

// FNV-1a over raw bytes (the stream checksum).
u64 fnv1a(const u8* data, std::size_t size, u64 seed = 0xcbf29ce484222325ull);

// --- Writer -----------------------------------------------------------------
//
// Append-only in-memory encoder; save() writes header + stream + footer via
// a temp file + rename, so a crashed recorder never leaves a
// well-formed-looking partial trace behind.
class Writer {
 public:
  explicit Writer(const Header& header) : header_(header) {
    stream_.reserve(1u << 16);
  }

  const Header& header() const noexcept { return header_; }

  void block() { stream_.push_back(static_cast<u8>(Tag::kBlock)); }
  void block_at(u32 pc, u32 cursor) {
    stream_.push_back(static_cast<u8>(Tag::kBlockAt));
    put_varint(stream_, zigzag(static_cast<i64>(pc) - cursor));
  }
  void run(u32 length, u32 count) {
    stream_.push_back(
        static_cast<u8>(length == 4 ? Tag::kRun4 : Tag::kRun2));
    put_varint(stream_, count);
  }
  void jump(u32 pc, u32 target) { redirect(Tag::kJump, pc, target); }
  void branch_taken(u32 pc, u32 target) { redirect(Tag::kBranchT, pc, target); }
  void branch_not_taken(u32 length) {
    stream_.push_back(
        static_cast<u8>(length == 4 ? Tag::kBranchN4 : Tag::kBranchN2));
  }
  void mret(u32 pc, u32 target) { redirect(Tag::kMret, pc, target); }
  void mem(Tag tag, u32 addr, u8 size) {
    stream_.push_back(static_cast<u8>(tag));
    mem_payload(addr, size);
  }
  void amo_fail() { stream_.push_back(static_cast<u8>(Tag::kAmoFail)); }
  void mul(u32 length) {
    stream_.push_back(static_cast<u8>(length == 4 ? Tag::kMul4 : Tag::kMul2));
  }
  void div(u32 length, u32 dividend) {
    stream_.push_back(static_cast<u8>(length == 4 ? Tag::kDiv4 : Tag::kDiv2));
    put_varint(stream_, dividend);
  }
  void csr(u32 length) {
    stream_.push_back(static_cast<u8>(length == 4 ? Tag::kCsr4 : Tag::kCsr2));
  }
  void sys_exit() { stream_.push_back(static_cast<u8>(Tag::kSysExit)); }
  void wfi_halt() { stream_.push_back(static_cast<u8>(Tag::kWfiHalt)); }
  void wfi_sleep() { stream_.push_back(static_cast<u8>(Tag::kWfiSleep)); }
  void trap_insn(u8 op_class, u32 length, bool handled, u32 cause, u32 pc,
                 u32 handler) {
    stream_.push_back(static_cast<u8>(Tag::kTrapInsn));
    stream_.push_back(static_cast<u8>((op_class & kTrapClassMask) |
                                      (length == 4 ? kTrapLen4 : 0) |
                                      (handled ? kTrapHandled : 0)));
    put_varint(stream_, cause);
    if (handled) put_varint(stream_, zigzag(static_cast<i64>(handler) - pc));
  }
  void trap_fetch(bool handled, u32 cause, u32 cursor, u32 handler) {
    stream_.push_back(static_cast<u8>(Tag::kTrapFetch));
    stream_.push_back(static_cast<u8>(handled ? kTrapHandled : 0));
    put_varint(stream_, cause);
    if (handled) {
      put_varint(stream_, zigzag(static_cast<i64>(handler) - cursor));
    }
  }
  void taint(TaintKind kind) {
    stream_.push_back(static_cast<u8>(Tag::kTaint));
    put_varint(stream_, static_cast<u64>(kind));
  }

  std::size_t stream_size() const noexcept { return stream_.size(); }

  // Serialize header + stream + kEnd + footer. `footer.stream_checksum` is
  // computed here; the caller fills the run facts.
  std::vector<u8> finish(Footer footer);

  // finish() + atomic write (temp + fsync + rename).
  Status save(const std::string& path, Footer footer);

 private:
  void redirect(Tag tag, u32 pc, u32 target) {
    stream_.push_back(static_cast<u8>(tag));
    put_varint(stream_, zigzag(static_cast<i64>(target) - pc));
  }
  void mem_payload(u32 addr, u8 size) {
    const u32 log2_size = size == 4 ? 2 : (size == 2 ? 1 : 0);
    put_varint(stream_,
               (zigzag(static_cast<i64>(addr) - prev_addr_) << 2) | log2_size);
    prev_addr_ = addr;
  }

  Header header_;
  std::vector<u8> stream_;
  u32 prev_addr_ = 0;
};

// --- Reader -----------------------------------------------------------------

// One taint occurrence with enough context for a per-site diagnostic.
struct TaintSite {
  TaintKind kind = TaintKind::kCsrCycleRead;
  u32 pc = 0;  // cursor at the taint event
};

// A fully validated trace: load() refuses bad magic, bad version, missing
// or torn footers and checksum mismatches with a per-site diagnostic, and
// pre-walks the stream once so counts are verified against the footer
// before any replay trusts them.
class Trace {
 public:
  static Result<Trace> load(const std::string& path);
  static Result<Trace> parse(std::vector<u8> bytes);

  const Header& header() const noexcept { return header_; }
  const Footer& footer() const noexcept { return footer_; }
  const std::vector<TaintSite>& taints() const noexcept { return taints_; }

  // Raw event-stream bytes (excluding the kEnd terminator).
  const u8* stream_data() const noexcept { return bytes_.data() + stream_off_; }
  std::size_t stream_size() const noexcept { return stream_len_; }

 private:
  std::vector<u8> bytes_;
  std::size_t stream_off_ = 0;
  std::size_t stream_len_ = 0;
  Header header_;
  Footer footer_;
  std::vector<TaintSite> taints_;
};

// Streaming decoder over a trace's event bytes. Maintains the PC cursor and
// the mem-address delta state; next() yields one event (kRun* events carry
// their full count — the caller expands them). Returns false at stream end.
// Decode errors (unknown tag, varint overrun) are reported via error().
class Cursor {
 public:
  Cursor(const u8* data, std::size_t size, u32 entry_pc)
      : p_(data), end_(data + size), pc_(entry_pc) {}
  explicit Cursor(const Trace& trace)
      : Cursor(trace.stream_data(), trace.stream_size(),
               trace.header().entry_pc) {}

  bool next(Event& out);

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  // Byte offset of the *last decoded* event (for diagnostics).
  std::size_t offset() const noexcept { return event_off_; }

 private:
  bool get_varint(u64& out);
  bool fail(const std::string& message) {
    error_ = message;
    return false;
  }

  const u8* p_;
  const u8* end_;
  const u8* begin_ = p_;
  u32 pc_;
  u32 prev_addr_ = 0;
  std::size_t event_off_ = 0;
  std::string error_;
};

}  // namespace s4e::trace
