# Empty compiler generated dependencies file for test_qta.
# This may be replaced when dependencies are built.
