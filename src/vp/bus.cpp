#include "vp/bus.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/strings.hpp"

namespace s4e::vp {

void Bus::add_ram(u32 base, u32 size) {
  S4E_CHECK_MSG(size > 0, "RAM region must be non-empty");
  RamRegion region;
  region.base = base;
  region.bytes.assign(size, 0);
  const std::size_t pages = (size + kRamPageBytes - 1) / kRamPageBytes;
  region.dirty.assign((pages + 63) / 64, 0);
  ram_.push_back(std::move(region));
}

void Bus::add_device(u32 base, u32 size, std::unique_ptr<Device> device) {
  S4E_CHECK_MSG(device != nullptr, "null device");
  devices_.push_back(DeviceMapping{base, size, std::move(device)});
}

Bus::RamRegion* Bus::find_ram(u32 address, u32 size) noexcept {
  for (auto& region : ram_) {
    if (address >= region.base && address + size <= region.end() &&
        address + size >= address) {
      return &region;
    }
  }
  return nullptr;
}

const Bus::RamRegion* Bus::find_ram(u32 address, u32 size) const noexcept {
  return const_cast<Bus*>(this)->find_ram(address, size);
}

Bus::DeviceMapping* Bus::find_device(u32 address) noexcept {
  for (auto& mapping : devices_) {
    if (address >= mapping.base && address < mapping.base + mapping.size) {
      return &mapping;
    }
  }
  return nullptr;
}

Result<BusRead> Bus::read(u32 address, unsigned size) {
  if (RamRegion* region = find_ram(address, size)) {
    const std::size_t offset = address - region->base;
    u32 value = 0;
    for (unsigned i = 0; i < size; ++i) {
      value |= static_cast<u32>(region->bytes[offset + i]) << (8 * i);
    }
    return BusRead{value, false};
  }
  if (DeviceMapping* mapping = find_device(address)) {
    if (address % size != 0) {
      return Error(ErrorCode::kInvalidArgument,
                   format("misaligned MMIO read at 0x%08x", address));
    }
    S4E_TRY(value, mapping->device->read(address - mapping->base, size));
    return BusRead{value, true};
  }
  return Error(ErrorCode::kOutOfRange,
               format("load access fault at 0x%08x", address));
}

Result<bool> Bus::write(u32 address, unsigned size, u32 value) {
  if (RamRegion* region = find_ram(address, size)) {
    const std::size_t offset = address - region->base;
    for (unsigned i = 0; i < size; ++i) {
      region->bytes[offset + i] = static_cast<u8>(value >> (8 * i));
    }
    region->mark_dirty(offset, size);
    return false;
  }
  if (DeviceMapping* mapping = find_device(address)) {
    if (address % size != 0) {
      return Error(ErrorCode::kInvalidArgument,
                   format("misaligned MMIO write at 0x%08x", address));
    }
    S4E_TRY_STATUS(mapping->device->write(address - mapping->base, size, value));
    return true;
  }
  return Error(ErrorCode::kOutOfRange,
               format("store access fault at 0x%08x", address));
}

Result<u32> Bus::fetch_word(u32 address) {
  if (const RamRegion* region = find_ram(address, 4)) {
    const std::size_t offset = address - region->base;
    u32 value = 0;
    for (unsigned i = 0; i < 4; ++i) {
      value |= static_cast<u32>(region->bytes[offset + i]) << (8 * i);
    }
    return value;
  }
  return Error(ErrorCode::kOutOfRange,
               format("instruction access fault at 0x%08x", address));
}

Result<u32> Bus::fetch_half(u32 address) {
  if (const RamRegion* region = find_ram(address, 2)) {
    const std::size_t offset = address - region->base;
    return static_cast<u32>(region->bytes[offset]) |
           (static_cast<u32>(region->bytes[offset + 1]) << 8);
  }
  return Error(ErrorCode::kOutOfRange,
               format("instruction access fault at 0x%08x", address));
}

Status Bus::ram_read(u32 address, void* buffer, u32 size) const {
  const RamRegion* region = find_ram(address, size);
  if (region == nullptr) {
    return Error(ErrorCode::kOutOfRange,
                 format("RAM read outside RAM at 0x%08x", address));
  }
  std::memcpy(buffer, region->bytes.data() + (address - region->base), size);
  return Status();
}

Status Bus::ram_write(u32 address, const void* buffer, u32 size) {
  RamRegion* region = find_ram(address, size);
  if (region == nullptr) {
    return Error(ErrorCode::kOutOfRange,
                 format("RAM write outside RAM at 0x%08x", address));
  }
  std::memcpy(region->bytes.data() + (address - region->base), buffer, size);
  if (size > 0) region->mark_dirty(address - region->base, size);
  return Status();
}

bool Bus::is_ram(u32 address, u32 size) const noexcept {
  return find_ram(address, size) != nullptr;
}

Bus::RamWindow Bus::ram_window(u32 address) noexcept {
  if (RamRegion* region = find_ram(address, 1)) {
    return RamWindow{region->bytes.data(), region->dirty.data(), region->base,
                     static_cast<u32>(region->bytes.size())};
  }
  return RamWindow{};
}

void Bus::tick(u64 now) {
  for (auto& mapping : devices_) mapping.device->tick(now);
}

Device* Bus::device_at(u32 base) noexcept {
  for (auto& mapping : devices_) {
    if (mapping.base == base) return mapping.device.get();
  }
  return nullptr;
}

void Bus::reset_devices() {
  for (auto& mapping : devices_) mapping.device->reset();
}

void Bus::ram_snapshot(std::vector<RamImage>& images) {
  images.clear();
  images.reserve(ram_.size());
  for (auto& region : ram_) {
    RamImage image;
    image.base = region.base;
    image.bytes = region.bytes;  // full copy, paid once per snapshot
    images.push_back(std::move(image));
    std::fill(region.dirty.begin(), region.dirty.end(), 0);
  }
}

u64 Bus::ram_restore(const std::vector<RamImage>& images,
                     std::vector<std::pair<u32, u32>>* restored) {
  S4E_CHECK_MSG(images.size() == ram_.size(),
                "RAM restore from a foreign snapshot");
  u64 copied = 0;
  for (std::size_t r = 0; r < ram_.size(); ++r) {
    RamRegion& region = ram_[r];
    const RamImage& image = images[r];
    S4E_CHECK_MSG(image.base == region.base &&
                      image.bytes.size() == region.bytes.size(),
                  "RAM restore shape mismatch");
    const std::size_t pages =
        (region.bytes.size() + kRamPageBytes - 1) / kRamPageBytes;
    for (std::size_t word = 0; word < region.dirty.size(); ++word) {
      u64 bits = region.dirty[word];
      while (bits != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t page = word * 64 + bit;
        if (page >= pages) break;
        const std::size_t offset = page * kRamPageBytes;
        const std::size_t size =
            std::min<std::size_t>(kRamPageBytes, region.bytes.size() - offset);
        std::memcpy(region.bytes.data() + offset, image.bytes.data() + offset,
                    size);
        ++copied;
        if (restored != nullptr) {
          restored->emplace_back(region.base + static_cast<u32>(offset),
                                 static_cast<u32>(size));
        }
      }
      region.dirty[word] = 0;
    }
  }
  return copied;
}

u64 Bus::ram_pages() const noexcept {
  u64 pages = 0;
  for (const auto& region : ram_) {
    pages += (region.bytes.size() + kRamPageBytes - 1) / kRamPageBytes;
  }
  return pages;
}

void Bus::save_device_state(std::vector<std::vector<u8>>& blobs) const {
  blobs.clear();
  blobs.reserve(devices_.size());
  for (const auto& mapping : devices_) {
    StateWriter writer;
    mapping.device->save_state(writer);
    blobs.push_back(writer.take());
  }
}

void Bus::restore_device_state(const std::vector<std::vector<u8>>& blobs) {
  S4E_CHECK_MSG(blobs.size() == devices_.size(),
                "device state restore from a foreign snapshot");
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    StateReader reader(blobs[d]);
    devices_[d].device->restore_state(reader);
    S4E_CHECK_MSG(reader.exhausted(),
                  "device state blob not fully consumed");
  }
}

}  // namespace s4e::vp
