// E2 — plugin instrumentation overhead.
//
// The TCG-plugin architecture's selling point is that uninstrumented
// execution pays (almost) nothing and full per-instruction instrumentation
// costs a moderate constant factor (the QEMU user-mode figure the group
// reports is ~2x). Measured here: the hot kernel under no plugin, a tb-exec
// counter, full per-insn coverage, QTA co-simulation, and memwatch.
#include <benchmark/benchmark.h>

#include <chrono>

#include "asm/assembler.hpp"
#include "coverage/coverage.hpp"
#include "memwatch/memwatch.hpp"
#include "obs/flight_recorder.hpp"
#include "qta/qta.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace {

using namespace s4e;

const char* kKernel = R"(
_start:
    la t6, buf
    li t0, 50000
loop:
    lw t1, 0(t6)
    addi t1, t1, 1
    sw t1, 0(t6)
    xor t2, t1, t0
    add t3, t2, t1
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 16
)";

const assembler::Program& kernel_program() {
  static const assembler::Program program = [] {
    auto result = assembler::assemble(kKernel);
    S4E_CHECK(result.ok());
    return *result;
  }();
  return program;
}

const wcet::AnnotatedCfg& kernel_annotated() {
  static const wcet::AnnotatedCfg annotated = [] {
    auto analysis = wcet::Analyzer().analyze(kernel_program());
    S4E_CHECK(analysis.ok());
    return analysis->annotated;
  }();
  return annotated;
}

enum class PluginKind {
  kNone,
  kTbExec,
  kCoverage,
  kQta,
  kMemWatch,
  kInsnNop,
  kFlightRecorder,
};

struct TbExecCounter final : vp::PluginBase {
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.tb_exec = true;
    return subs;
  }
  void on_tb_exec(u32) override { ++count; }
  u64 count = 0;
};

// The cheapest possible per-insn plugin: isolates dispatch cost.
struct InsnNop final : vp::PluginBase {
  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    return subs;
  }
  void on_insn_exec(const s4e_insn_info&) override { ++count; }
  u64 count = 0;
};

void run_with_plugin(benchmark::State& state, PluginKind kind) {
  u64 instructions = 0;
  for (auto _ : state) {
    vp::Machine machine;
    S4E_CHECK(machine.load_program(kernel_program()).ok());
    TbExecCounter tb_counter;
    InsnNop insn_nop;
    coverage::CoveragePlugin coverage_plugin;
    memwatch::Policy policy;
    policy.regions.push_back(
        memwatch::Region{"buf", 0x8001'0000, 16, true, true, 0, 0});
    memwatch::MemWatchPlugin memwatch_plugin(policy);
    qta::QtaPlugin qta_plugin(kernel_annotated());
    obs::FlightRecorderPlugin recorder;
    switch (kind) {
      case PluginKind::kNone: break;
      case PluginKind::kTbExec: tb_counter.attach(machine.vm_handle()); break;
      case PluginKind::kCoverage:
        coverage_plugin.attach(machine.vm_handle());
        break;
      case PluginKind::kQta: qta_plugin.attach(machine.vm_handle()); break;
      case PluginKind::kMemWatch:
        memwatch_plugin.attach(machine.vm_handle());
        break;
      case PluginKind::kInsnNop: insn_nop.attach(machine.vm_handle()); break;
      case PluginKind::kFlightRecorder:
        recorder.attach(machine.vm_handle());
        break;
    }
    const vp::RunResult result = machine.run();
    S4E_CHECK(result.normal_exit());
    instructions += result.instructions;
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}

void BM_NoPlugin(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kNone);
}
void BM_TbExecCounter(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kTbExec);
}
void BM_InsnNop(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kInsnNop);
}
void BM_CoveragePlugin(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kCoverage);
}
void BM_QtaPlugin(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kQta);
}
void BM_MemWatchPlugin(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kMemWatch);
}
void BM_FlightRecorder(benchmark::State& state) {
  run_with_plugin(state, PluginKind::kFlightRecorder);
}

BENCHMARK(BM_NoPlugin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TbExecCounter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InsnNop)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CoveragePlugin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QtaPlugin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MemWatchPlugin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlightRecorder)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Overhead-factor summary for EXPERIMENTS.md.
  auto seconds_for = [&](PluginKind kind) {
    vp::Machine machine;
    S4E_CHECK(machine.load_program(kernel_program()).ok());
    TbExecCounter tb_counter;
    InsnNop insn_nop;
    coverage::CoveragePlugin coverage_plugin;
    qta::QtaPlugin qta_plugin(kernel_annotated());
    memwatch::Policy policy;
    policy.regions.push_back(
        memwatch::Region{"buf", 0x8001'0000, 16, true, true, 0, 0});
    memwatch::MemWatchPlugin memwatch_plugin(policy);
    obs::FlightRecorderPlugin recorder;
    switch (kind) {
      case PluginKind::kNone: break;
      case PluginKind::kTbExec: tb_counter.attach(machine.vm_handle()); break;
      case PluginKind::kCoverage:
        coverage_plugin.attach(machine.vm_handle());
        break;
      case PluginKind::kQta: qta_plugin.attach(machine.vm_handle()); break;
      case PluginKind::kMemWatch:
        memwatch_plugin.attach(machine.vm_handle());
        break;
      case PluginKind::kInsnNop: insn_nop.attach(machine.vm_handle()); break;
      case PluginKind::kFlightRecorder:
        recorder.attach(machine.vm_handle());
        break;
    }
    const auto start = std::chrono::steady_clock::now();
    machine.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double base = seconds_for(PluginKind::kNone);
  std::printf("\n[E2] overhead vs uninstrumented:\n");
  std::printf("  tb-exec counter : %.2fx\n",
              seconds_for(PluginKind::kTbExec) / base);
  std::printf("  per-insn nop    : %.2fx\n",
              seconds_for(PluginKind::kInsnNop) / base);
  std::printf("  coverage        : %.2fx\n",
              seconds_for(PluginKind::kCoverage) / base);
  std::printf("  qta             : %.2fx\n",
              seconds_for(PluginKind::kQta) / base);
  std::printf("  memwatch        : %.2fx\n",
              seconds_for(PluginKind::kMemWatch) / base);
  std::printf("  flight recorder : %.2fx\n",
              seconds_for(PluginKind::kFlightRecorder) / base);
  return 0;
}
