# Empty compiler generated dependencies file for s4e-as.
# This may be replaced when dependencies are built.
