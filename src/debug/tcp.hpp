// Loopback TCP transport for the GDB stub. Deliberately minimal: one
// listener, one accepted connection, blocking reads with a poll variant for
// the Ctrl-C check between run slices. Port 0 binds an ephemeral port
// (reported via port()) so tests never collide.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/bits.hpp"
#include "debug/server.hpp"

namespace s4e::debug {

class TcpChannel final : public ByteChannel {
 public:
  explicit TcpChannel(int fd) : fd_(fd) {}
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  std::string read_blocking() override;
  std::string read_poll() override;
  bool write_all(std::string_view bytes) override;

  // Deadline read: block up to `timeout_ms` (-1 = forever) for data. An
  // empty return with `timed_out` set means the deadline passed with the
  // peer still connected; empty without it means close/error — so a
  // vanished peer (killed worker, detached client) can never hang the
  // owning loop forever.
  std::string read_for(int timeout_ms, bool& timed_out);

  // Connect to 127.0.0.1:port (a fleet worker dialing back to its
  // orchestrator). Null with a message in `error` on failure.
  static std::unique_ptr<TcpChannel> connect_loopback(u16 port,
                                                      std::string& error);

  int fd() const noexcept { return fd_; }

 private:
  int fd_;
};

class TcpListener {
 public:
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Bind and listen on 127.0.0.1:port (port 0 → ephemeral). Returns null
  // with a message in `error` on failure.
  static std::unique_ptr<TcpListener> listen_loopback(u16 port,
                                                      std::string& error);

  // The bound port (resolves port-0 binds).
  u16 port() const noexcept { return port_; }

  // Block until a client connects; null on accept failure.
  std::unique_ptr<TcpChannel> accept_one(std::string& error);

  // Deadline accept: wait up to `timeout_ms` (-1 = forever) for a client.
  // Null with `timed_out` set (and no error) when the deadline passed —
  // the caller's loop stays live even if the expected peer never shows up.
  std::unique_ptr<TcpChannel> accept_one_for(int timeout_ms,
                                             std::string& error,
                                             bool& timed_out);

  int fd() const noexcept { return fd_; }

 private:
  TcpListener(int fd, u16 port) : fd_(fd), port_(port) {}

  int fd_;
  u16 port_;
};

}  // namespace s4e::debug
