# seeded defect: `bigframe` dips sp by 4 MiB + 4 KiB — deeper than the
# VP's entire RAM (sp starts at the top of RAM). The frame is balanced and
# the program never touches the over-deep region, so it runs clean; only
# the static stack-depth bound catches it. s4e-lint (whose default
# --stack-limit is the RAM size) must report a stack-overflow finding.

_start:
    call bigframe
    li a0, 0
    li a7, 93
    ecall

bigframe:
    lui t0, 0x401      # 0x401000-byte frame: deeper than 4 MiB of RAM
    sub sp, sp, t0
    add sp, sp, t0
    ret
