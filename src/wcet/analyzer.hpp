// Static WCET analysis — the ecosystem's aiT substitute.
//
// Pipeline: binary -> CFG reconstruction -> per-block worst-case timing
// (shared TimingModel) -> loop bounds (annotations + counted-loop patterns)
// -> structural IPET: longest path over the loop-nest tree, collapsing each
// loop (innermost first) into a supernode weighted
//     (bound-1) * maxBackPath + maxExitPrefix,
// then a topological longest-path over the resulting DAG. Calls are
// summarized callee-first over an acyclic call graph.
//
// The output is both a numeric bound and the WCET-annotated CFG the QTA
// co-simulation loads (the ait2qta artefact).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "cfg/cfg.hpp"
#include "common/status.hpp"
#include "vp/timing.hpp"
#include "wcet/annotated_cfg.hpp"

namespace s4e::wcet {

struct FunctionWcet {
  std::string name;
  u32 entry = 0;
  u64 wcet = 0;           // cycles per invocation, callees included
  u32 block_count = 0;
  u32 loop_count = 0;
  u32 bounded_loops = 0;  // loops with a usable bound
};

struct AnalysisResult {
  u64 total_wcet = 0;  // bound for one run from the program entry
  std::vector<FunctionWcet> functions;  // entry function first
  AnnotatedCfg annotated;  // for QTA
};

struct AnalyzerOptions {
  vp::TimingParams timing;
  std::string program_name = "program";
  // Run the data-flow analysis to resolve jump-table / `la`+`jr` indirect
  // jumps into explicit CFG edges before analyzing. Without it any indirect
  // jump is a hard error (the pre-dataflow contract).
  bool resolve_indirect = true;
  // Drop statically unreachable blocks and infeasible branch edges before
  // the IPET pass. Sound (the pruned graph is a sub-graph, so the bound can
  // only tighten) but off by default: benchmarks guarded by constant-folded
  // self checks would otherwise lose their deliberately-heavy arms.
  bool prune_infeasible = false;
};

class Analyzer {
 public:
  explicit Analyzer(const AnalyzerOptions& options = {}) : options_(options) {}

  // Analyze a loaded program. Fails when the CFG is not analyzable
  // (indirect jumps), when a loop has no derivable/annotated bound, or when
  // the call graph is recursive — the same rejection classes aiT has.
  Result<AnalysisResult> analyze(const assembler::Program& program) const;

  // Analyze a prebuilt CFG (used by tests and by ablation benches).
  Result<AnalysisResult> analyze(const cfg::ProgramCfg& program_cfg) const;

 private:
  Result<u64> function_wcet(const cfg::Function& fn,
                            const std::vector<assembler::LoopBound>& bounds,
                            const std::map<u32, u64>& callee_wcet,
                            AnalysisResult& out) const;

  AnalyzerOptions options_;
};

}  // namespace s4e::wcet
