// Physical address space of the VP: RAM regions plus memory-mapped devices.
//
// Default edge-SoC memory map (matches the workloads and the examples):
//   0x1000_0000  UART0
//   0x0200_0000  CLINT (mtime / mtimecmp)
//   0x0010_0000  test finisher (exit device)
//   0x8000_0000  RAM (code + data), size configurable
#pragma once

#include <memory>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "vp/device.hpp"

namespace s4e::vp {

// Result of a bus access: the value plus whether a device (vs RAM) was hit,
// which feeds the timing model's MMIO wait states.
struct BusRead {
  u32 value = 0;
  bool mmio = false;
};

class Bus {
 public:
  // Add a RAM region. Regions must not overlap devices or each other.
  void add_ram(u32 base, u32 size);

  // Map `device` at [base, base+size). The bus keeps ownership.
  void add_device(u32 base, u32 size, std::unique_ptr<Device> device);

  // Data-side accesses (MMIO side effects apply). Misaligned accesses are
  // supported for RAM (QEMU semantics); device accesses must be aligned.
  Result<BusRead> read(u32 address, unsigned size);
  Result<bool> write(u32 address, unsigned size, u32 value);  // -> mmio?

  // Instruction fetch: RAM only (executing from MMIO is an access fault).
  Result<u32> fetch_word(u32 address);
  // 16-bit fetch for RVC parcel decoding.
  Result<u32> fetch_half(u32 address);

  // Direct RAM access without MMIO side effects (loader, plugins, fault
  // injector). Fails if the range is not fully RAM-backed.
  Status ram_read(u32 address, void* buffer, u32 size) const;
  Status ram_write(u32 address, const void* buffer, u32 size);

  // True if [address, address+size) lies fully inside a RAM region.
  bool is_ram(u32 address, u32 size) const noexcept;

  // Advance all devices to cycle `now`.
  void tick(u64 now);

  // Device registered at `base`, or nullptr (tests and example wiring).
  Device* device_at(u32 base) noexcept;

 private:
  struct RamRegion {
    u32 base = 0;
    std::vector<u8> bytes;
    u32 end() const noexcept { return base + static_cast<u32>(bytes.size()); }
  };
  struct DeviceMapping {
    u32 base = 0;
    u32 size = 0;
    std::unique_ptr<Device> device;
  };

  RamRegion* find_ram(u32 address, u32 size) noexcept;
  const RamRegion* find_ram(u32 address, u32 size) const noexcept;
  DeviceMapping* find_device(u32 address) noexcept;

  std::vector<RamRegion> ram_;
  std::vector<DeviceMapping> devices_;
};

}  // namespace s4e::vp
