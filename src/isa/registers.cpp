#include "isa/registers.hpp"

#include <array>

#include "common/strings.hpp"

namespace s4e::isa {

namespace {
constexpr std::array<std::string_view, kGprCount> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};
}  // namespace

std::string_view gpr_abi_name(unsigned index) noexcept {
  return kAbiNames[index % kGprCount];
}

std::optional<unsigned> parse_gpr(std::string_view name) noexcept {
  if (name.size() >= 2 && (name[0] == 'x' || name[0] == 'X')) {
    unsigned value = 0;
    bool all_digits = true;
    for (char c : name.substr(1)) {
      if (c < '0' || c > '9') {
        all_digits = false;
        break;
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (all_digits && value < kGprCount) return value;
  }
  if (name == "fp") return 8;  // frame-pointer alias for s0
  for (unsigned i = 0; i < kGprCount; ++i) {
    if (name == kAbiNames[i]) return i;
  }
  return std::nullopt;
}

}  // namespace s4e::isa
