# sieve of Eratosthenes over [2, 100)
# expected exit code: 25

_start:
    la s0, flags
    li s7, 100
    li s1, 2
sieve_outer:
    add t0, s0, s1
    lbu t1, 0(t0)
    bnez t1, notprime
    add t2, s1, s1
mark:
    .loopbound 50
    bge t2, s7, endmark
    add t3, s0, t2
    li t4, 1
    sb t4, 0(t3)
    add t2, t2, s1
    j mark
endmark:
notprime:
    addi s1, s1, 1
    blt s1, s7, sieve_outer
    li s2, 2
    li a0, 0
count:
    add t0, s0, s2
    lbu t1, 0(t0)
    seqz t1, t1
    add a0, a0, t1
    addi s2, s2, 1
    blt s2, s7, count
    li a7, 93
    ecall
.data
flags:
    .space 100
