// Small string utilities used by the assembler, report writers and the
// annotated-CFG text format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace s4e {

// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

// Split on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view text, char sep);

// Split on any whitespace run, dropping empty fields.
std::vector<std::string_view> split_whitespace(std::string_view text);

// Parse a signed integer with optional 0x/0b prefix and +/- sign.
Result<std::int64_t> parse_integer(std::string_view text);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// True if `text` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

// Lower-case copy (ASCII only; mnemonics and directives).
std::string to_lower(std::string_view text);

// Render `value` right-aligned in a field of `width` (report tables).
std::string pad_left(const std::string& value, std::size_t width);
std::string pad_right(const std::string& value, std::size_t width);

// Levenshtein edit distance (insert/delete/substitute, unit costs) — the
// "did you mean --X" suggestion metric of the CLI argument parser.
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace s4e
