// Flight recorder — a fixed-size ring buffer of the most recent execution
// events (instructions, memory accesses, traps), attached through the C
// plugin API like every other analysis tool.
//
// The VP's campaign engines classify a mutant as kHang or kCrash and then
// throw away everything the machine knew about *why*. The recorder keeps a
// bounded trail of what happened last — the PC path into the hang loop, the
// last control-flow decision, the faulting access — cheap enough to leave
// on for every mutant run (a few stores per instruction, no allocation
// after construction) and bounded regardless of run length.
//
// Recording never perturbs the guest: the plugin only reads the event
// structs the VP hands it, so a run with the recorder attached is
// bit-identical (RunResult, UART, memory) to the same run without it.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "vp/plugin.hpp"

namespace s4e::obs {

// One recorded event. Plain data, fixed size; the interpretation of the
// payload words depends on `kind`.
struct FlightEvent {
  enum class Kind : u8 {
    kInsn,  // a = encoding, b = op_class (isa::OpClass)
    kMem,   // a = vaddr, b = value, size/is_store valid
    kTrap,  // a = cause (bit 31 = interrupt), b = tval, pc = epc
  };

  Kind kind = Kind::kInsn;
  u8 size = 0;           // kMem: access size in bytes
  u8 is_store = 0;       // kMem: 1 = store
  u32 pc = 0;            // kInsn/kMem: instruction address; kTrap: epc
  u32 a = 0;
  u32 b = 0;
  // Recorder-local monotonic sequence number. Not written on the hot path:
  // snapshot() reconstructs it from the ring position.
  u64 seq = 0;
};

class FlightRecorderPlugin final : public vp::PluginBase {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  // `capacity` is rounded up to a power of two (ring indexing by mask).
  explicit FlightRecorderPlugin(std::size_t capacity = kDefaultCapacity);

  Subscriptions subscriptions() const override {
    Subscriptions subs;
    subs.insn_exec = true;
    subs.mem = true;
    subs.trap = true;
    return subs;
  }

  void on_insn_exec(const s4e_insn_info& insn) override {
    FlightEvent& slot = ring_[head_ & mask_];
    slot.kind = FlightEvent::Kind::kInsn;
    slot.pc = insn.address;
    slot.a = insn.encoding;
    slot.b = insn.op_class;
    ++head_;
  }

  void on_mem(const s4e_mem_event& event) override {
    FlightEvent& slot = ring_[head_ & mask_];
    slot.kind = FlightEvent::Kind::kMem;
    slot.pc = event.pc;
    slot.a = event.vaddr;
    slot.b = event.value;
    slot.size = event.size;
    slot.is_store = event.is_store;
    ++head_;
  }

  void on_trap(const s4e_trap_event& event) override {
    FlightEvent& slot = ring_[head_ & mask_];
    slot.kind = FlightEvent::Kind::kTrap;
    slot.pc = event.epc;
    slot.a = event.cause;
    slot.b = event.tval;
    ++head_;
  }

  std::size_t capacity() const noexcept { return ring_.size(); }
  // Total events observed (>= the number retained).
  u64 recorded() const noexcept { return head_; }

  // The retained events, oldest first (at most capacity() of them).
  std::vector<FlightEvent> snapshot() const;

  // Human-readable dump of the last `last_n` retained events: the PC trail
  // with disassembly, the last control-flow decision, and the last memory
  // access / trap. `last_n` = 0 dumps everything retained.
  std::string post_mortem(std::size_t last_n = 0) const;

  void clear() noexcept { head_ = 0; }

 private:
  std::vector<FlightEvent> ring_;
  std::size_t mask_;
  u64 head_ = 0;
};

}  // namespace s4e::obs
