#include "fleet/records.hpp"

#include "common/strings.hpp"

namespace s4e::fleet {

namespace {

constexpr std::string_view kFaultTargets[] = {"gpr", "mem", "code"};
constexpr std::string_view kOutcomes[] = {"masked", "sdc", "crash", "hang"};
constexpr std::string_view kOperators[] = {"opcode-subst", "register-repl",
                                           "imm-perturb"};
constexpr std::string_view kVerdicts[] = {"killed-result", "killed-crash",
                                          "killed-hang", "SURVIVED"};

template <std::size_t N>
std::optional<u8> match(const std::string_view (&names)[N],
                        std::string_view text) {
  for (std::size_t i = 0; i < N; ++i) {
    if (names[i] == text) return static_cast<u8>(i);
  }
  return std::nullopt;
}

}  // namespace

std::optional<u64> parse_hex_u64(std::string_view text) {
  if (text.empty() || text.size() > 16) return std::nullopt;
  u64 value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<u64>(c - 'A' + 10);
    else return std::nullopt;
  }
  return value;
}

std::string_view to_string(Mode mode) noexcept {
  return mode == Mode::kFault ? "fault" : "mutation";
}

std::optional<Mode> parse_mode(std::string_view text) noexcept {
  if (text == "fault") return Mode::kFault;
  if (text == "mutation") return Mode::kMutation;
  return std::nullopt;
}

u64 campaign_fingerprint(const std::string& elf_bytes, Mode mode, u64 seed,
                         u64 mutants, u64 max_mutants, unsigned shards) {
  u64 hash = 0xcbf29ce484222325ull;  // FNV-1a
  const auto mix = [&hash](u64 value) {
    for (unsigned i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const char c : elf_bytes) {
    hash ^= static_cast<u8>(c);
    hash *= 0x100000001b3ull;
  }
  mix(static_cast<u64>(mode));
  mix(seed);
  mix(mutants);
  mix(max_mutants);
  mix(shards);
  return hash;
}

std::string encode(const MetaLine& meta) {
  return format(
      "{\"meta\":\"s4e-fleet\",\"mode\":\"%s\",\"shard\":%u,\"shards\":%u,"
      "\"begin\":%llu,\"end\":%llu,\"total\":%llu,\"golden_exit\":%d,"
      "\"golden_instructions\":%llu,\"fingerprint\":\"%016llx\"}",
      std::string(to_string(meta.mode)).c_str(), meta.shard, meta.shards,
      static_cast<unsigned long long>(meta.begin),
      static_cast<unsigned long long>(meta.end),
      static_cast<unsigned long long>(meta.total), meta.golden_exit,
      static_cast<unsigned long long>(meta.golden_instructions),
      static_cast<unsigned long long>(meta.fingerprint));
}

std::string encode(Mode mode, const RecordLine& record) {
  const std::string_view klass = mode == Mode::kFault
                                     ? kFaultTargets[record.klass]
                                     : kOperators[record.klass];
  const std::string_view bucket = mode == Mode::kFault
                                      ? kOutcomes[record.bucket]
                                      : kVerdicts[record.bucket];
  return format("{\"i\":%llu,\"class\":\"%s\",\"bucket\":\"%s\",\"exit\":%d,"
                "\"insns\":%llu,\"pruned\":%u}",
                static_cast<unsigned long long>(record.index),
                std::string(klass).c_str(), std::string(bucket).c_str(),
                record.exit_code,
                static_cast<unsigned long long>(record.instructions),
                record.pruned ? 1u : 0u);
}

std::string encode(const DoneLine& done) {
  return format("{\"done\":true,\"shard\":%u,\"count\":%llu}", done.shard,
                static_cast<unsigned long long>(done.count));
}

std::string encode_record(const fault::MutantResult& mutant, u64 index) {
  RecordLine record;
  record.index = index;
  record.klass = static_cast<u8>(mutant.spec.target);
  record.bucket = static_cast<u8>(mutant.outcome);
  record.exit_code = mutant.exit_code;
  record.instructions = mutant.instructions;
  record.pruned = mutant.pruned;
  return encode(Mode::kFault, record);
}

std::string encode_record(const mutation::MutantResult& result, u64 index) {
  RecordLine record;
  record.index = index;
  record.klass = static_cast<u8>(result.mutant.op);
  record.bucket = static_cast<u8>(result.verdict);
  record.exit_code = result.exit_code;
  record.instructions = result.instructions;
  record.pruned = result.pruned;
  return encode(Mode::kMutation, record);
}

std::optional<std::string> json_field(std::string_view line,
                                      std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  if (i >= line.size()) return std::nullopt;
  if (line[i] == '"') {
    std::string value;
    for (++i; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        const char next = line[++i];
        value += next == 'n' ? '\n' : next == 't' ? '\t' : next;
        continue;
      }
      if (line[i] == '"') return value;
      value += line[i];
    }
    return std::nullopt;  // unterminated string
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end == i || end == line.size()) return std::nullopt;
  return std::string(line.substr(i, end - i));
}

std::optional<long long> json_int_field(std::string_view line,
                                        std::string_view key) {
  const auto raw = json_field(line, key);
  if (!raw.has_value()) return std::nullopt;
  const auto value = parse_integer(*raw);
  if (!value.ok()) return std::nullopt;
  return *value;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

Result<ParsedLine> parse_line(std::string_view line, Mode mode) {
  ParsedLine parsed;
  if (line.find("\"meta\"") != std::string_view::npos) {
    MetaLine meta;
    const auto mode_name = json_field(line, "mode");
    const auto parsed_mode =
        mode_name.has_value() ? parse_mode(*mode_name) : std::nullopt;
    if (!parsed_mode.has_value() || *parsed_mode != mode) {
      return Error(ErrorCode::kParseError,
                   "fleet meta line: missing or mismatched mode");
    }
    meta.mode = *parsed_mode;
    const auto shard = json_int_field(line, "shard");
    const auto shards = json_int_field(line, "shards");
    const auto begin = json_int_field(line, "begin");
    const auto end = json_int_field(line, "end");
    const auto total = json_int_field(line, "total");
    const auto golden_exit = json_int_field(line, "golden_exit");
    const auto golden_insns = json_int_field(line, "golden_instructions");
    const auto fingerprint = json_field(line, "fingerprint");
    if (!shard || !shards || !begin || !end || !total || !golden_exit ||
        !golden_insns || !fingerprint) {
      return Error(ErrorCode::kParseError, "fleet meta line: missing field");
    }
    const auto fp = parse_hex_u64(*fingerprint);
    if (!fp) {
      return Error(ErrorCode::kParseError,
                   "fleet meta line: bad fingerprint");
    }
    meta.shard = static_cast<unsigned>(*shard);
    meta.shards = static_cast<unsigned>(*shards);
    meta.begin = static_cast<u64>(*begin);
    meta.end = static_cast<u64>(*end);
    meta.total = static_cast<u64>(*total);
    meta.golden_exit = static_cast<int>(*golden_exit);
    meta.golden_instructions = static_cast<u64>(*golden_insns);
    meta.fingerprint = *fp;
    if (meta.begin > meta.end || meta.end > meta.total ||
        meta.shards == 0 || meta.shard >= meta.shards) {
      return Error(ErrorCode::kParseError,
                   "fleet meta line: inconsistent shard range");
    }
    parsed.meta = meta;
    return parsed;
  }
  if (line.find("\"done\"") != std::string_view::npos) {
    DoneLine done;
    const auto shard = json_int_field(line, "shard");
    const auto count = json_int_field(line, "count");
    if (!shard || !count || *count < 0) {
      return Error(ErrorCode::kParseError, "fleet done line: missing field");
    }
    done.shard = static_cast<unsigned>(*shard);
    done.count = static_cast<u64>(*count);
    parsed.done = done;
    return parsed;
  }
  RecordLine record;
  const auto index = json_int_field(line, "i");
  const auto klass = json_field(line, "class");
  const auto bucket = json_field(line, "bucket");
  const auto exit_code = json_int_field(line, "exit");
  const auto insns = json_int_field(line, "insns");
  const auto pruned = json_int_field(line, "pruned");
  if (!index || !klass || !bucket || !exit_code || !insns || !pruned) {
    return Error(ErrorCode::kParseError,
                 "fleet record line: missing field in '" +
                     std::string(line.substr(0, 120)) + "'");
  }
  const auto klass_value = mode == Mode::kFault ? match(kFaultTargets, *klass)
                                                : match(kOperators, *klass);
  const auto bucket_value = mode == Mode::kFault ? match(kOutcomes, *bucket)
                                                 : match(kVerdicts, *bucket);
  if (!klass_value || !bucket_value) {
    return Error(ErrorCode::kParseError,
                 "fleet record line: unknown class or bucket");
  }
  record.index = static_cast<u64>(*index);
  record.klass = *klass_value;
  record.bucket = *bucket_value;
  record.exit_code = static_cast<int>(*exit_code);
  record.instructions = static_cast<u64>(*insns);
  record.pruned = *pruned != 0;
  parsed.record = record;
  return parsed;
}

}  // namespace s4e::fleet
