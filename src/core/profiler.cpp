#include "core/profiler.hpp"

#include <algorithm>
#include <vector>

#include "common/strings.hpp"

namespace s4e::core {

u64 ProfilerPlugin::attributed_instructions() const {
  u64 total = 0;
  for (const auto& [start, count] : exec_counts_) {
    auto it = block_insns_.find(start);
    if (it != block_insns_.end()) total += count * it->second;
  }
  return total;
}

std::string ProfilerPlugin::report(const assembler::Program& program,
                                   unsigned top_n) const {
  // Nearest preceding symbol for an address.
  auto symbolize = [&](u32 address) -> std::string {
    std::string best_name = "?";
    u32 best_value = 0;
    bool found = false;
    for (const auto& [name, value] : program.symbols) {
      if (value <= address && (!found || value > best_value)) {
        best_name = name;
        best_value = value;
        found = true;
      }
    }
    if (!found) return format("0x%08x", address);
    const u32 delta = address - best_value;
    return delta == 0 ? best_name : format("%s+0x%x", best_name.c_str(), delta);
  };

  std::vector<std::pair<u32, u64>> sorted(exec_counts_.begin(),
                                          exec_counts_.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const auto& a, const auto& b) {
                     auto weight = [&](const std::pair<u32, u64>& entry) {
                       auto it = block_insns_.find(entry.first);
                       const u64 insns =
                           it == block_insns_.end() ? 1 : it->second;
                       return entry.second * insns;
                     };
                     return weight(a) > weight(b);
                   });

  const u64 total = std::max<u64>(attributed_instructions(), 1);
  std::string out = "hot blocks (by attributed instructions):\n";
  out += format("  %-10s %-26s %10s %8s %8s\n", "address", "symbol", "execs",
                "insns", "share");
  unsigned shown = 0;
  for (const auto& [start, count] : sorted) {
    if (++shown > top_n) break;
    auto it = block_insns_.find(start);
    const u64 insns = it == block_insns_.end() ? 0 : it->second;
    out += format("  0x%08x %-26s %10llu %8llu %7.1f%%\n", start,
                  symbolize(start).c_str(),
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(insns),
                  100.0 * static_cast<double>(count * insns) /
                      static_cast<double>(total));
  }
  return out;
}

}  // namespace s4e::core
