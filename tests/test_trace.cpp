// Trace subsystem suite: codec units, the truncated/corrupt-trace gauntlet,
// and the capture-once / replay-many properties:
//
//   T1  varint/zigzag codec edges and RLE boundaries survive a round trip
//   T2  every torn/corrupt trace shape is refused with a diagnostic
//   T3  record -> replay is cycle-identical to live execution for EVERY
//       timing configuration in the matrix (the bit-identity contract),
//       over random torture programs
//   T4  the replayed PC sequence drives the QTA path accumulator to the
//       same WC-path time the live co-simulation computes
//   T5  the matrix fan-out on the thread pool agrees with serial replay
//       (tsan-matched: the trace is shared read-only across workers)
#include <gtest/gtest.h>

#include <cstdio>

#include "asm/assembler.hpp"
#include "qta/qta.hpp"
#include "testgen/testgen.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace s4e {
namespace {

// Record `program` on a machine configured with `timing`; returns the
// serialized trace bytes and the live run result.
struct Recording {
  std::vector<u8> bytes;
  vp::RunResult result;
};

Recording record_program(const assembler::Program& program,
                         const vp::TimingParams& timing) {
  vp::MachineConfig config;
  config.timing = timing;
  vp::Machine machine(config);
  EXPECT_TRUE(machine.load_program(program).ok());
  trace::TraceRecorder recorder(
      trace::TraceRecorder::config_for(config, program));
  EXPECT_TRUE(recorder.attach_checked(machine.vm_handle()).ok());
  Recording recording;
  recording.result = machine.run();
  recording.bytes = recorder.finish_bytes(recording.result);
  return recording;
}

u64 live_cycles(const assembler::Program& program,
                const vp::TimingParams& timing) {
  vp::MachineConfig config;
  config.timing = timing;
  vp::Machine machine(config);
  EXPECT_TRUE(machine.load_program(program).ok());
  return machine.run().cycles;
}

trace::Header test_header() {
  trace::Header header;
  header.fingerprint = 0x1234;
  header.entry_pc = 0x8000'0000;
  return header;
}

// --- T1: codec units --------------------------------------------------------

TEST(TraceCodec, VarintEdges) {
  for (const u64 value :
       {u64{0}, u64{1}, u64{0x7f}, u64{0x80}, u64{0x3fff}, u64{0x4000},
        u64{0xffff'ffff}, ~u64{0}}) {
    std::vector<u8> bytes;
    trace::put_varint(bytes, value);
    // LEB128: 7 payload bits per byte.
    std::size_t expect = 1;
    for (u64 v = value; v >= 0x80; v >>= 7) ++expect;
    EXPECT_EQ(bytes.size(), expect) << value;
  }
}

TEST(TraceCodec, ZigzagRoundTrip) {
  for (const i64 value : {i64{0}, i64{1}, i64{-1}, i64{2}, i64{-2},
                          i64{0x7fff'ffff}, -i64{0x8000'0000},
                          std::numeric_limits<i64>::max(),
                          std::numeric_limits<i64>::min()}) {
    EXPECT_EQ(trace::unzigzag(trace::zigzag(value)), value);
  }
  // Small magnitudes must stay small (the whole point of zigzag).
  EXPECT_EQ(trace::zigzag(-1), 1u);
  EXPECT_EQ(trace::zigzag(1), 2u);
}

TEST(TraceCodec, EmptyTraceRoundTrips) {
  trace::Writer writer(test_header());
  auto parsed = trace::Trace::parse(writer.finish(trace::Footer{}));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->footer().instructions, 0u);
  trace::Cursor cursor(*parsed);
  trace::Event event;
  EXPECT_FALSE(cursor.next(event));
  EXPECT_TRUE(cursor.ok());
}

TEST(TraceCodec, RunBoundariesRoundTrip) {
  // RLE counts straddling every varint byte boundary, with length switches.
  const u32 counts[] = {1, 2, 127, 128, 129, 16383, 16384};
  trace::Writer writer(test_header());
  trace::Footer footer;
  u32 pc = 0x8000'0000;
  for (const u32 count : counts) {
    writer.block();
    ++footer.blocks;
    writer.run(4, count);
    pc += count * 4;
    writer.run(2, count);
    pc += count * 2;
    footer.instructions += 2u * count;
  }
  auto parsed = trace::Trace::parse(writer.finish(footer));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  trace::Cursor cursor(*parsed);
  trace::Event event;
  u32 cursor_pc = 0x8000'0000;
  for (const u32 count : counts) {
    ASSERT_TRUE(cursor.next(event));
    EXPECT_EQ(event.tag, trace::Tag::kBlock);
    ASSERT_TRUE(cursor.next(event));
    EXPECT_EQ(event.tag, trace::Tag::kRun4);
    EXPECT_EQ(event.count, count);
    EXPECT_EQ(event.pc, cursor_pc);
    cursor_pc += count * 4;
    ASSERT_TRUE(cursor.next(event));
    EXPECT_EQ(event.tag, trace::Tag::kRun2);
    EXPECT_EQ(event.count, count);
    EXPECT_EQ(event.pc, cursor_pc);
    cursor_pc += count * 2;
  }
  EXPECT_FALSE(cursor.next(event));
  EXPECT_TRUE(cursor.ok()) << cursor.error();
}

TEST(TraceCodec, MemDeltasAndRedirectsRoundTrip) {
  trace::Writer writer(test_header());
  trace::Footer footer;
  writer.block();
  footer.blocks = 1;
  // Backward jump (negative delta), then loads with forward and backward
  // address deltas across all sizes.
  writer.jump(0x8000'0000, 0x8000'0100);
  writer.mem(trace::Tag::kLoad4, 0x8000'2000, 4);
  writer.mem(trace::Tag::kStore2, 0x8000'1ffe, 2);
  writer.mem(trace::Tag::kLoadMmio4, 0x1000'0000, 1);
  writer.branch_taken(0x8000'010a, 0x8000'0000);
  footer.instructions = 5;
  footer.mem_accesses = 3;
  auto parsed = trace::Trace::parse(writer.finish(footer));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  trace::Cursor cursor(*parsed);
  trace::Event event;
  ASSERT_TRUE(cursor.next(event));  // block
  ASSERT_TRUE(cursor.next(event));  // jump
  EXPECT_EQ(event.target, 0x8000'0100u);
  ASSERT_TRUE(cursor.next(event));  // load4
  EXPECT_EQ(event.mem_addr, 0x8000'2000u);
  EXPECT_EQ(event.mem_size, 4u);
  EXPECT_FALSE(event.mem_store);
  EXPECT_FALSE(event.mem_mmio);
  ASSERT_TRUE(cursor.next(event));  // store2, backward delta
  EXPECT_EQ(event.mem_addr, 0x8000'1ffeu);
  EXPECT_EQ(event.mem_size, 2u);
  EXPECT_TRUE(event.mem_store);
  ASSERT_TRUE(cursor.next(event));  // mmio load, byte
  EXPECT_EQ(event.mem_addr, 0x1000'0000u);
  EXPECT_EQ(event.mem_size, 1u);
  EXPECT_TRUE(event.mem_mmio);
  ASSERT_TRUE(cursor.next(event));  // taken branch, backward
  EXPECT_EQ(event.target, 0x8000'0000u);
  EXPECT_FALSE(cursor.next(event));
  EXPECT_TRUE(cursor.ok()) << cursor.error();
}

// --- T2: the torn/corrupt gauntlet ------------------------------------------

std::vector<u8> valid_trace_bytes() {
  trace::Writer writer(test_header());
  trace::Footer footer;
  writer.block();
  writer.run(4, 10);
  footer.blocks = 1;
  footer.instructions = 10;
  return writer.finish(footer);
}

void expect_refused(std::vector<u8> bytes, const char* needle) {
  auto parsed = trace::Trace::parse(std::move(bytes));
  ASSERT_FALSE(parsed.ok()) << "expected refusal mentioning '" << needle
                            << "'";
  EXPECT_NE(parsed.error().message().find(needle), std::string::npos)
      << parsed.error().to_string();
}

TEST(TraceGauntlet, RefusesTinyFile) {
  expect_refused({0x01, 0x02, 0x03}, "smaller");
}

TEST(TraceGauntlet, RefusesBadMagic) {
  auto bytes = valid_trace_bytes();
  bytes[0] = 'X';
  expect_refused(std::move(bytes), "magic");
}

TEST(TraceGauntlet, RefusesWrongVersion) {
  auto bytes = valid_trace_bytes();
  bytes[8] = 0x7f;  // version field, little-endian low byte
  expect_refused(std::move(bytes), "version");
}

TEST(TraceGauntlet, RefusesTruncatedFooter) {
  auto bytes = valid_trace_bytes();
  bytes.resize(bytes.size() - 7);  // tear the footer
  expect_refused(std::move(bytes), "footer");
}

TEST(TraceGauntlet, RefusesMissingFooter) {
  auto bytes = valid_trace_bytes();
  bytes.resize(bytes.size() - 64);  // drop the whole footer: crashed recorder
  expect_refused(std::move(bytes), "footer");
}

TEST(TraceGauntlet, RefusesCorruptStream) {
  auto bytes = valid_trace_bytes();
  bytes[81] ^= 0x40;  // flip a bit inside the event stream
  expect_refused(std::move(bytes), "checksum");
}

TEST(TraceGauntlet, RefusesSplicedCounts) {
  // A footer whose counts disagree with the (checksum-valid) stream: splice
  // a different footer onto a valid stream.
  trace::Writer writer(test_header());
  trace::Footer footer;
  writer.block();
  writer.run(4, 10);
  footer.blocks = 1;
  footer.instructions = 99;  // lie
  auto parsed = trace::Trace::parse(writer.finish(footer));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("spliced"), std::string::npos)
      << parsed.error().to_string();
}

TEST(TraceGauntlet, RefusesUnknownTag) {
  trace::Writer writer(test_header());
  trace::Footer footer;
  writer.block();
  footer.blocks = 1;
  auto bytes = writer.finish(footer);
  bytes[80] = 0x7e;  // overwrite the kBlock tag with garbage
  // Checksum now mismatches; rebuild the trace with the garbage checksummed
  // so the decode-layer diagnostic is the one under test.
  trace::Writer writer2(test_header());
  writer2.taint(trace::TaintKind::kCsrCycleRead);  // 2-byte event to patch
  trace::Footer footer2;
  footer2.taints = 1;
  auto bytes2 = writer2.finish(footer2);
  (void)bytes;
  // Patch the tag byte and recompute nothing: parse must fail loudly either
  // at the checksum or the decode layer — never crash or mis-decode.
  bytes2[80] = 0x7e;
  auto parsed = trace::Trace::parse(std::move(bytes2));
  ASSERT_FALSE(parsed.ok());
}

TEST(TraceGauntlet, RecorderSaveIsAtomicAndLoadable) {
  auto program = assembler::assemble(R"(
    .text
    li a0, 0
    li a1, 5
  loop:
    addi a0, a0, 1
    blt a0, a1, loop
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();

  vp::MachineConfig config;
  vp::Machine machine(config);
  ASSERT_TRUE(machine.load_program(*program).ok());
  trace::TraceRecorder recorder(
      trace::TraceRecorder::config_for(config, *program));
  ASSERT_TRUE(recorder.attach_checked(machine.vm_handle()).ok());
  const vp::RunResult result = machine.run();

  const std::string path = ::testing::TempDir() + "trace_atomic_test.bin";
  ASSERT_TRUE(recorder.finish(result, path).ok());
  auto loaded = trace::Trace::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded->footer().recorded_cycles, result.cycles);
  EXPECT_TRUE(trace::self_check(*loaded).ok());
  std::remove(path.c_str());
}

TEST(TraceGauntlet, RecorderRejectsSmp) {
  auto program = assembler::assemble(R"(
    .text
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(program.ok());
  vp::MachineConfig config;
  config.num_harts = 2;
  vp::Machine machine(config);
  ASSERT_TRUE(machine.load_program(*program).ok());
  trace::TraceRecorder recorder(
      trace::TraceRecorder::config_for(config, *program));
  auto status = recorder.attach_checked(machine.vm_handle());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("single-hart"), std::string::npos);
}

TEST(TraceGauntlet, ReplayRefusesWrongWorkload) {
  auto program = assembler::assemble(R"(
    .text
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(program.ok());
  const auto recording = record_program(*program, vp::TimingParams{});
  auto parsed = trace::Trace::parse(recording.bytes);
  ASSERT_TRUE(parsed.ok());
  auto status = trace::check_replayable(*parsed, 0xdeadbeef);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("different workload"),
            std::string::npos);
}

// --- T3: the bit-identity property ------------------------------------------

class TraceSeed : public ::testing::TestWithParam<u64> {};

TEST_P(TraceSeed, ReplayIsCycleIdenticalToLiveExecution) {
  testgen::TortureConfig torture;
  torture.seed = GetParam();
  torture.programs = 3;
  // The generator's CSR segments read mcycle (a designed taint source);
  // taint refusal has its own test below. Here every program must replay.
  torture.use_csr = false;
  const auto matrix = trace::timing_matrix();
  unsigned replayed = 0;
  for (const auto& test : testgen::torture_suite(torture)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    const auto recording = record_program(*program, vp::TimingParams{});
    auto parsed = trace::Trace::parse(recording.bytes);
    ASSERT_TRUE(parsed.ok()) << test.name << ": "
                             << parsed.error().to_string();
    ASSERT_TRUE(parsed->taints().empty()) << test.name;
    EXPECT_TRUE(trace::self_check(*parsed).ok()) << test.name;

    for (const auto& config : matrix) {
      auto result = trace::replay(*parsed, config.params);
      ASSERT_TRUE(result.ok())
          << test.name << " / " << config.name << ": "
          << result.error().to_string();
      EXPECT_EQ(result->cycles, live_cycles(*program, config.params))
          << test.name << " diverged under " << config.name;
      EXPECT_EQ(result->instructions, recording.result.instructions)
          << test.name << " / " << config.name;
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
}

TEST_P(TraceSeed, CycleCsrReadsTaintAndAreRefused) {
  // With CSR segments on, the generator reads mcycle: those programs MUST
  // come back tainted and replay MUST refuse them per-site; the rest must
  // still be bit-identical under the base configuration.
  testgen::TortureConfig torture;
  torture.seed = GetParam() + 9000;
  torture.programs = 4;
  unsigned tainted = 0;
  for (const auto& test : testgen::torture_suite(torture)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;
    const auto recording = record_program(*program, vp::TimingParams{});
    auto parsed = trace::Trace::parse(recording.bytes);
    ASSERT_TRUE(parsed.ok()) << test.name;
    if (!parsed->taints().empty()) {
      ++tainted;
      auto refused = trace::replay(*parsed, vp::TimingParams{});
      ASSERT_FALSE(refused.ok()) << test.name;
      EXPECT_NE(refused.error().message().find("tainted"), std::string::npos);
      EXPECT_NE(refused.error().message().find("cycle-CSR read"),
                std::string::npos)
          << refused.error().to_string();
      continue;
    }
    auto result = trace::replay(*parsed, vp::TimingParams{});
    ASSERT_TRUE(result.ok()) << test.name;
    EXPECT_EQ(result->cycles, recording.result.cycles) << test.name;
  }
  EXPECT_GT(tainted, 0u) << "expected at least one mcycle-reading program";
}

TEST(TraceSeedless, KitchenSinkBitIdentity) {
  // Hand-written coverage for the event classes the csr-free torture
  // generator cannot emit: counter-free CSR ops, a handled ebreak trap,
  // mret, operand-dependent divides, atomics (lr/sc both outcomes + rmw),
  // and sub-word accesses — bit-identical across the whole matrix.
  auto program = assembler::assemble(R"(
    .text
    la a1, handler
    csrw mtvec, a1
    li t0, 0x80001000
    li a0, 37
    csrrw a2, mscratch, a0
    csrrs a3, mscratch, zero
    li a4, -64
    li a5, 5
    div a6, a4, a5
    divu s2, a4, a5
    rem s3, a5, a4
    li s4, 1
    mul s5, a4, a5
    lr.w s6, (t0)
    addi s6, s6, 1
    sc.w s7, s6, (t0)
    sc.w s8, s6, (t0)
    amoadd.w s9, a0, (t0)
    amoxor.w s10, a5, (t0)
    sb a0, 2(t0)
    lb s11, 2(t0)
    sh a5, 4(t0)
    lhu t2, 4(t0)
    ebreak
  after_trap:
    la a1, target
    csrw mepc, a1
    mret
    li a0, 1
    li a7, 93
    ecall
  target:
    li a0, 0
    li a7, 93
    ecall
  handler:
    csrr t3, mepc
    addi t3, t3, 4
    csrw mepc, t3
    mret
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  const auto recording = record_program(*program, vp::TimingParams{});
  EXPECT_EQ(recording.result.exit_code, 0);
  auto parsed = trace::Trace::parse(recording.bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_TRUE(parsed->taints().empty());
  EXPECT_TRUE(trace::self_check(*parsed).ok());
  for (const auto& config : trace::timing_matrix()) {
    auto result = trace::replay(*parsed, config.params);
    ASSERT_TRUE(result.ok()) << config.name;
    EXPECT_EQ(result->cycles, live_cycles(*program, config.params))
        << "diverged under " << config.name;
  }
}

TEST_P(TraceSeed, RecordingConfigurationDoesNotMatter) {
  // Record under a fully-featured configuration, replay under others: for
  // an untainted program the captured path is configuration-independent,
  // so the trace must replay identically no matter what it was recorded on.
  testgen::TortureConfig torture;
  torture.seed = GetParam() + 5000;
  torture.programs = 2;
  torture.use_csr = false;  // avoid interrupt/CSR taints for this property
  auto featured = trace::timing_matrix().back().params;  // everything on
  for (const auto& test : testgen::torture_suite(torture)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;
    const auto recording = record_program(*program, featured);
    auto parsed = trace::Trace::parse(recording.bytes);
    ASSERT_TRUE(parsed.ok()) << test.name;
    if (!parsed->taints().empty()) continue;
    EXPECT_TRUE(trace::self_check(*parsed).ok()) << test.name;
    const vp::TimingParams base;
    auto result = trace::replay(*parsed, base);
    ASSERT_TRUE(result.ok()) << test.name;
    EXPECT_EQ(result->cycles, live_cycles(*program, base)) << test.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeed,
                         ::testing::Values(11u, 29u, 83u, 191u));

// --- T4: QTA path-accumulator equivalence -----------------------------------

TEST(TraceQta, ReplayedPathMatchesLiveCoSimulation) {
  testgen::TortureConfig torture;
  torture.seed = 7;
  torture.programs = 3;
  for (const auto& test : testgen::torture_suite(torture)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    wcet::AnalyzerOptions options;
    options.program_name = test.name;
    auto analysis = wcet::Analyzer(options).analyze(*program);
    if (!analysis.ok()) continue;  // not statically analyzable: fine

    // Live co-simulation with the recorder riding along.
    vp::MachineConfig config;
    vp::Machine machine(config);
    ASSERT_TRUE(machine.load_program(*program).ok());
    qta::QtaPlugin plugin(analysis->annotated);
    plugin.attach(machine.vm_handle());
    trace::TraceRecorder recorder(
        trace::TraceRecorder::config_for(config, *program));
    ASSERT_TRUE(recorder.attach_checked(machine.vm_handle()).ok());
    const vp::RunResult result = machine.run();

    auto parsed = trace::Trace::parse(recorder.finish_bytes(result));
    ASSERT_TRUE(parsed.ok()) << test.name;
    if (!parsed->taints().empty()) continue;

    analysis->annotated.reindex();
    qta::PathAccumulator path(analysis->annotated);
    auto replayed = trace::replay(*parsed, vp::TimingParams{},
                                  [&path](u32 pc) { path.step(pc); });
    ASSERT_TRUE(replayed.ok()) << test.name;
    EXPECT_EQ(path.wc_path_cycles(), plugin.wc_path_cycles()) << test.name;
    EXPECT_EQ(path.blocks_entered(), plugin.blocks_entered()) << test.name;
    EXPECT_EQ(replayed->cycles, result.cycles) << test.name;
    // The chain holds offline exactly as it does live.
    const auto report = path.report(replayed->cycles);
    EXPECT_LE(report.observed_cycles, report.wc_path_cycles) << test.name;
    EXPECT_FALSE(report.bound_violated) << test.name;
  }
}

// --- T5: matrix fan-out on the pool -----------------------------------------

TEST(TraceMatrix, PoolFanOutAgreesWithSerialReplay) {
  auto program = assembler::assemble(R"(
    .text
    li a0, 0
    li a1, 200
    li a3, 7
    li t0, 0x80001000
  loop:
    addi a0, a0, 1
    mul a4, a0, a3
    divu a5, a1, a0
    sw a4, 0(t0)
    lw a6, 0(t0)
    blt a0, a1, loop
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  const auto recording = record_program(*program, vp::TimingParams{});
  auto parsed = trace::Trace::parse(recording.bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  const auto matrix = trace::timing_matrix();
  ASSERT_EQ(matrix.size(), 32u);
  auto rows = trace::replay_matrix(*parsed, matrix, 4);
  ASSERT_TRUE(rows.ok()) << rows.error().to_string();
  ASSERT_EQ(rows->size(), matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    auto serial = trace::replay(*parsed, matrix[i].params);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*rows)[i].name, matrix[i].name);
    EXPECT_EQ((*rows)[i].result.cycles, serial->cycles) << matrix[i].name;
    EXPECT_EQ((*rows)[i].result.icache_misses, serial->icache_misses);
    EXPECT_EQ((*rows)[i].result.mispredicts, serial->mispredicts);
  }
}

}  // namespace
}  // namespace s4e
