file(REMOVE_RECURSE
  "CMakeFiles/test_wcet.dir/test_wcet.cpp.o"
  "CMakeFiles/test_wcet.dir/test_wcet.cpp.o.d"
  "test_wcet"
  "test_wcet.pdb"
  "test_wcet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
