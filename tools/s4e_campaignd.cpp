// s4e-campaignd — campaign fleet service: shards a fault or mutation
// campaign across worker processes and merges their streamed results.
//
//   s4e-campaignd file.elf [--mode fault|mutation] [--workers N]
//                 [--shards N] [--worker-jobs N] [--seed S] [--mutants N]
//                 [--max N] [--worker PATH] [--checkpoint FILE] [--tcp]
//                 [--status-port P] [--max-retries N] [--stats]
//
// The merged report on stdout is byte-identical to the serial tool's
// (s4e-faultsim / s4e-mutate with the same campaign knobs): workers
// regenerate the identical mutant enumeration, execute only their
// contiguous shard, and the daemon folds the records in global index
// order. --checkpoint makes the fleet crash-safe: completed shards are
// journaled (fsync before acknowledge), and a restarted daemon resumes
// from the committed set instead of re-running it. Workers that die
// mid-shard are respawned automatically.
//
// --status-port P serves one line of live JSON metrics per connection
// (P=0 binds an ephemeral port, printed to stderr). --tcp streams results
// over loopback TCP instead of stdout pipes (same wire format).
#include <unistd.h>

#include <cstdio>
#include <string>

#include "fleet/orchestrator.hpp"
#include "tools/tool_util.hpp"

namespace {

// Default worker binary: s4e-faultsim / s4e-mutate next to this binary,
// so an installed or build-tree daemon finds its siblings without flags.
std::string sibling_tool(const char* name) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return name;
  buffer[n] = '\0';
  std::string path(buffer);
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return name;
  return path.substr(0, slash + 1) + name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-campaignd <file.elf> [--mode fault|mutation] "
      "[--workers N] [--shards N] [--worker-jobs N] [--seed S] "
      "[--mutants N] [--max N] [--worker PATH] [--checkpoint FILE] "
      "[--tcp] [--status-port P] [--max-retries N] [--stats] "
      "[--test-kill-after N] [--test-fail-after-commits N]\n";
  tools::Args args(argc, argv,
                   {"--mode", "--workers", "--shards", "--worker-jobs",
                    "--seed", "--mutants", "--max", "--worker",
                    "--checkpoint", "--status-port", "--max-retries",
                    "--test-kill-after", "--test-fail-after-commits"},
                   {"--tcp", "--stats"});
  if (const int code = tools::standard_flags(args, "s4e-campaignd", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  fleet::FleetOptions options;
  options.elf_path = args.positional()[0];
  const std::string mode = args.value("--mode", "fault");
  if (mode == "fault") {
    options.mode = fleet::Mode::kFault;
  } else if (mode == "mutation") {
    options.mode = fleet::Mode::kMutation;
  } else {
    std::fprintf(stderr,
                 "s4e-campaignd: --mode expects fault|mutation (got %s)\n",
                 mode.c_str());
    return 2;
  }
  const auto workers = parse_integer(args.value("--workers", "2"));
  if (!workers.ok() || *workers < 1 || *workers > 256) {
    std::fprintf(stderr, "s4e-campaignd: --workers expects 1..256\n");
    return 2;
  }
  options.workers = static_cast<unsigned>(*workers);
  const auto shards = parse_integer(args.value("--shards", "0"));
  if (!shards.ok() || *shards < 0 || *shards > 1 << 16) {
    std::fprintf(stderr, "s4e-campaignd: --shards expects 0..65536\n");
    return 2;
  }
  options.shards = static_cast<unsigned>(*shards);
  options.worker_jobs = static_cast<unsigned>(
      parse_integer(args.value("--worker-jobs", "1")).value_or(1));
  options.seed = static_cast<u64>(
      parse_integer(args.value("--seed", "1")).value_or(1));
  options.mutants = static_cast<unsigned>(
      parse_integer(args.value("--mutants", "200")).value_or(200));
  options.max_mutants = static_cast<unsigned>(
      parse_integer(args.value("--max", "0")).value_or(0));
  options.worker_path = args.value(
      "--worker", sibling_tool(options.mode == fleet::Mode::kFault
                                   ? "s4e-faultsim"
                                   : "s4e-mutate"));
  options.checkpoint_path = args.value("--checkpoint");
  options.tcp_transport = args.has("--tcp");
  if (args.has("--status-port")) {
    options.status_port = static_cast<int>(
        parse_integer(args.value("--status-port", "0")).value_or(0));
    options.on_status_port = [](int port) {
      std::fprintf(stderr, "[campaignd] status endpoint on 127.0.0.1:%d\n",
                   port);
    };
  }
  options.max_retries = static_cast<unsigned>(
      parse_integer(args.value("--max-retries", "3")).value_or(3));
  options.test_kill_after_records = static_cast<unsigned>(
      parse_integer(args.value("--test-kill-after", "0")).value_or(0));
  options.test_fail_after_commits = static_cast<unsigned>(
      parse_integer(args.value("--test-fail-after-commits", "0"))
          .value_or(0));

  auto fleet_run = fleet::run_fleet(options);
  if (!fleet_run.ok()) {
    std::fprintf(stderr, "s4e-campaignd: %s\n",
                 fleet_run.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", fleet_run->report.c_str());
  if (args.has("--stats")) {
    // Fleet bookkeeping goes to stderr so stdout stays byte-identical to
    // the serial tool's report.
    const fleet::FleetStats& stats = fleet_run->stats;
    std::fprintf(stderr,
                 "[campaignd] %u/%u shards (%u recovered), %llu records, "
                 "%u workers spawned, %u restarts%s\n",
                 stats.shards_done + stats.shards_recovered,
                 stats.shards_total, stats.shards_recovered,
                 static_cast<unsigned long long>(stats.records),
                 stats.workers_spawned, stats.worker_restarts,
                 stats.checkpoint_replaced ? ", stale checkpoint replaced"
                                           : "");
  }
  return tools::finish_stdout("s4e-campaignd");
}
