#include "fleet/worker.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/strings.hpp"
#include "debug/tcp.hpp"

namespace s4e::fleet {

namespace {

// The stall hook parks the worker long enough for the orchestrator's kill
// to land; SIGKILL interrupts the sleep, so the bound is never reached in
// practice.
constexpr auto kStallDuration = std::chrono::seconds(60);

class StreamSink {
 public:
  explicit StreamSink(int result_port) : port_(result_port) {}

  Status open() {
    if (port_ < 0) return Status();
    std::string error;
    channel_ = debug::TcpChannel::connect_loopback(static_cast<u16>(port_),
                                                   error);
    if (channel_ == nullptr) {
      return Error(ErrorCode::kIoError, "fleet worker: " + error);
    }
    return Status();
  }

  Status write_line(const std::string& line) {
    if (channel_ != nullptr) {
      if (!channel_->write_all(line + "\n")) {
        return Error(ErrorCode::kIoError,
                     "fleet worker: result connection lost");
      }
      return Status();
    }
    if (std::fwrite(line.data(), 1, line.size(), stdout) != line.size() ||
        std::fputc('\n', stdout) == EOF || std::fflush(stdout) != 0) {
      return Error(ErrorCode::kIoError, "fleet worker: stdout write failed");
    }
    return Status();
  }

 private:
  int port_;
  std::unique_ptr<debug::TcpChannel> channel_;
};

}  // namespace

Status emit_stream(const MetaLine& meta,
                   const std::vector<std::string>& record_lines,
                   const EmitOptions& options) {
  StreamSink sink(options.result_port);
  S4E_TRY_STATUS(sink.open());
  S4E_TRY_STATUS(sink.write_line(encode(meta)));
  for (std::size_t i = 0; i < record_lines.size(); ++i) {
    if (options.stall_after != 0 && i == options.stall_after) {
      std::this_thread::sleep_for(kStallDuration);
    }
    S4E_TRY_STATUS(sink.write_line(record_lines[i]));
  }
  DoneLine done;
  done.shard = meta.shard;
  done.count = record_lines.size();
  return sink.write_line(encode(done));
}

std::optional<std::pair<unsigned, unsigned>> parse_shard(
    std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto index = parse_integer(text.substr(0, slash));
  const auto count = parse_integer(text.substr(slash + 1));
  if (!index.ok() || !count.ok() || *index < 0 || *count < 1 ||
      *index >= *count || *count > 1 << 20) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<unsigned>(*index),
                        static_cast<unsigned>(*count));
}

Result<std::string> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace s4e::fleet
