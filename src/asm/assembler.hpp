// Two-pass RV32IM_Zicsr assembler.
//
// Replaces the GCC cross-toolchain dependency of the original ecosystem:
// experiments need binaries with known control flow, which hand-written or
// generated assembly provides directly. Syntax is the GNU-as subset listed
// in README.md: labels, the usual pseudo-instructions (li/la/mv/j/call/...),
// data directives (.word/.half/.byte/.space/.asciz/.align), section
// directives (.text/.data), `.equ`, `%hi`/`%lo` relocations, and the
// Scale4Edge-specific `.loopbound N` WCET annotation.
#pragma once

#include <string_view>

#include "asm/program.hpp"
#include "common/status.hpp"

namespace s4e::assembler {

struct Options {
  u32 text_base = 0x8000'0000;
  u32 data_base = 0x8001'0000;
  // Emit RV32C encodings where a compressed form exists (never for control
  // flow, so instruction sizes stay independent of label distances).
  bool compress = false;
};

// Assemble `source` into a loadable program. On failure the error message
// carries the 1-based source line number.
Result<Program> assemble(std::string_view source, const Options& options = {});

}  // namespace s4e::assembler
