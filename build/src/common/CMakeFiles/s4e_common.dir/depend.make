# Empty dependencies file for s4e_common.
# This may be replaced when dependencies are built.
