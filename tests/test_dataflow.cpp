// Tests for the data-flow framework (abstract values, whole-program
// analysis, indirect-jump resolution) and the s4e-lint checks on top.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "dataflow/absvalue.hpp"
#include "dataflow/analyze.hpp"
#include "dataflow/callgraph.hpp"
#include "dataflow/lint.hpp"
#include "dataflow/summaries.hpp"
#include "dataflow/triage.hpp"
#include "fault/fault.hpp"
#include "memwatch/policy_file.hpp"
#include "mutation/mutation.hpp"

#ifndef S4E_SOURCE_DIR
#error "S4E_SOURCE_DIR must be defined by the build system"
#endif

namespace s4e::dataflow {
namespace {

// ---------------------------------------------------------------- AbsValue

TEST(AbsValue, ConstantAndJoin) {
  auto a = AbsValue::constant(3);
  auto b = AbsValue::constant(7);
  EXPECT_TRUE(a.is_const());
  EXPECT_EQ(a.const_value(), 3);
  auto joined = AbsValue::join(a, b);
  ASSERT_TRUE(joined.is_consts());
  EXPECT_EQ(joined.values(), (std::vector<i64>{3, 7}));
  EXPECT_EQ(AbsValue::join(a, AbsValue::bottom()), a);
  EXPECT_TRUE(AbsValue::join(a, AbsValue::top()).is_top());
}

TEST(AbsValue, ConstantsAreCanonicalSignExtended) {
  auto v = AbsValue::constant(0xffffffffu);
  EXPECT_EQ(v.const_value(), -1);
  EXPECT_EQ(v.const_raw(), 0xffffffffu);
}

TEST(AbsValue, JoinDecaysToHullPastBudget) {
  std::vector<i64> values;
  for (i64 i = 0; i < 40; ++i) values.push_back(i * 4);
  auto v = AbsValue::from_values(values);
  ASSERT_TRUE(v.is_range());
  EXPECT_EQ(v.lo(), 0);
  EXPECT_EQ(v.hi(), 156);
  EXPECT_EQ(v.stride(), 4);
}

TEST(AbsValue, RangeNormalization) {
  EXPECT_TRUE(AbsValue::range(5, 5, 1).is_const());
  EXPECT_TRUE(AbsValue::range(5, 4, 1).is_bottom());
  auto v = AbsValue::range(0, 12, 4);
  EXPECT_EQ(v.count(), 4u);
  auto raw = v.enumerate();
  EXPECT_EQ(raw, (std::vector<u32>{0, 4, 8, 12}));
}

TEST(AbsValue, EnumerateRespectsLimit) {
  auto v = AbsValue::range(0, 1000, 1);
  EXPECT_TRUE(v.enumerate(16).empty());
  EXPECT_TRUE(AbsValue::top().enumerate().empty());
}

TEST(AbsValue, WidenGoesToTop) {
  auto v = AbsValue::constant(9);
  v.widen();
  EXPECT_TRUE(v.is_top());
  auto b = AbsValue::bottom();
  b.widen();
  EXPECT_TRUE(b.is_bottom());
}

TEST(AbsValue, AddAndSub) {
  auto sum = av_add(AbsValue::constant(40), AbsValue::constant(2));
  ASSERT_TRUE(sum.is_const());
  EXPECT_EQ(sum.const_value(), 42);
  auto shifted = av_add(AbsValue::range(0, 12, 4), AbsValue::constant(100));
  ASSERT_TRUE(shifted.has_bounds());
  EXPECT_EQ(shifted.lo(), 100);
  EXPECT_EQ(shifted.hi(), 112);
  EXPECT_EQ(shifted.count(), 4u);
  EXPECT_TRUE(av_add(AbsValue::top(), AbsValue::constant(1)).is_top());
}

TEST(AbsValue, StackArithmetic) {
  auto sp = AbsValue::stack(0, 0, 1);
  auto frame = av_add(sp, AbsValue::constant(static_cast<u32>(-16)));
  ASSERT_TRUE(frame.is_stack());
  EXPECT_EQ(frame.lo(), -16);
  // sp-relative minus sp-relative is a plain offset difference.
  auto diff = av_sub(sp, frame);
  ASSERT_TRUE(diff.is_const());
  EXPECT_EQ(diff.const_value(), 16);
}

TEST(AbsValue, AndWithMaskBoundsTop) {
  // The jump-table selector clamp: even an unknown value ANDed with a
  // non-negative constant mask is bounded.
  auto clamped = av_and(AbsValue::top(), AbsValue::constant(3));
  ASSERT_TRUE(clamped.has_bounds());
  EXPECT_EQ(clamped.lo(), 0);
  EXPECT_EQ(clamped.hi(), 3);
}

TEST(AbsValue, ShiftForms) {
  auto v = av_sll(AbsValue::range(0, 3, 1), AbsValue::constant(2));
  ASSERT_TRUE(v.has_bounds());
  EXPECT_EQ(v.lo(), 0);
  EXPECT_EQ(v.hi(), 12);
  auto s = av_sra(AbsValue::constant(0x80000000u), AbsValue::constant(31));
  ASSERT_TRUE(s.is_const());
  EXPECT_EQ(s.const_value(), -1);
}

TEST(AbsValue, SltDecidableOnDisjointRanges) {
  auto lt = av_slt(AbsValue::range(0, 5, 1), AbsValue::range(10, 20, 1),
                   /*is_unsigned=*/false);
  ASSERT_TRUE(lt.is_const());
  EXPECT_EQ(lt.const_value(), 1);
  auto overlap = av_slt(AbsValue::range(0, 15, 1), AbsValue::range(10, 20, 1),
                        /*is_unsigned=*/false);
  EXPECT_EQ(overlap.lo(), 0);
  EXPECT_EQ(overlap.hi(), 1);
}

TEST(AbsValue, DivisionFollowsRiscvSemantics) {
  auto div0 = av_muldiv(isa::Op::kDiv, AbsValue::constant(7),
                        AbsValue::constant(0));
  ASSERT_TRUE(div0.is_const());
  EXPECT_EQ(div0.const_value(), -1);  // RV32: x / 0 == -1
  auto overflow = av_muldiv(isa::Op::kDiv, AbsValue::constant(0x80000000u),
                            AbsValue::constant(0xffffffffu));
  ASSERT_TRUE(overflow.is_const());
  EXPECT_EQ(overflow.const_raw(), 0x80000000u);  // INT_MIN / -1 wraps
}

// ---------------------------------------------------------------- analysis

Result<Analysis> analyze_source(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return analyze_program(*program);
}

TEST(Analysis, ResolvesLaJrTrampoline) {
  auto analysis = analyze_source(R"(
    la t0, target
    jalr zero, 0(t0)
target:
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis->unresolved.empty());
  ASSERT_EQ(analysis->resolved.size(), 1u);
  EXPECT_EQ(analysis->resolved.begin()->second.size(), 1u);
}

TEST(Analysis, ResolvesJumpTableToAllTargets) {
  auto workload = core::find_workload("jumptab");
  ASSERT_TRUE(workload.ok());
  auto analysis = analyze_source(workload->source);
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis->unresolved.empty());
  ASSERT_EQ(analysis->resolved.size(), 1u);
  EXPECT_EQ(analysis->resolved.begin()->second.size(), 4u);
}

TEST(Analysis, ReportsUnresolvableIndirect) {
  auto analysis = analyze_source(R"(
_start:
    csrr t0, mcycle
    jalr zero, 0(t0)
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  ASSERT_EQ(analysis->unresolved.size(), 1u);
  EXPECT_FALSE(analysis->unresolved[0].is_call);
  EXPECT_EQ(analysis->unresolved[0].function, "_start");
}

TEST(Analysis, PruneDropsInfeasibleArm) {
  // `li t0, 1; beqz t0, dead` — the taken edge is statically infeasible,
  // so pruning must drop the dead block (and with it the only `div`).
  auto analysis = analyze_source(R"(
    li t0, 1
    beqz t0, dead
    li a0, 0
    li a7, 93
    ecall
dead:
    div t1, t2, t3
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const auto ops = reachable_ops(*analysis);
  EXPECT_FALSE(ops[static_cast<unsigned>(isa::Op::kDiv)]);
  EXPECT_TRUE(ops[static_cast<unsigned>(isa::Op::kEcall)]);

  auto pruned = prune_cfg(*analysis);
  ASSERT_TRUE(pruned.ok()) << pruned.error().to_string();
  std::size_t full_blocks = 0;
  for (const auto& fn : analysis->cfg.functions) full_blocks += fn.blocks.size();
  std::size_t pruned_blocks = 0;
  for (const auto& fn : pruned->functions) pruned_blocks += fn.blocks.size();
  EXPECT_LT(pruned_blocks, full_blocks);
}

// -------------------------------------------------------------------- lint

bool has_kind(const LintReport& report, CheckKind kind) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const Finding& f) { return f.kind == kind; });
}

Result<LintReport> lint_source(std::string_view source,
                               const LintOptions& options = {}) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return lint_program(*program, options);
}

std::string read_negative(const std::string& name) {
  const std::string path =
      std::string(S4E_SOURCE_DIR) + "/workloads/negative/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Lint, CleanOnEveryStandardWorkload) {
  // The zero-false-positive contract: every shipped workload lints clean.
  for (const core::Workload& workload : core::standard_workloads()) {
    auto report = lint_source(workload.source);
    ASSERT_TRUE(report.ok()) << workload.name;
    EXPECT_TRUE(report->clean())
        << workload.name << ":\n" << report->to_string();
  }
}

TEST(Lint, FlagsUninitializedReads) {
  auto report = lint_source(read_negative("uninit_read.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUninitRead));
  // Both t0 and t1 are flagged at the same pc.
  EXPECT_EQ(report->findings.size(), 2u);
}

TEST(Lint, FlagsUnreachableBlockAndDeadWrite) {
  auto report = lint_source(read_negative("dead_code.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUnreachableBlock));
  EXPECT_TRUE(has_kind(*report, CheckKind::kDeadWrite));
}

TEST(Lint, FlagsUnbalancedStackAndReportsDepth) {
  auto report = lint_source(read_negative("unbalanced_stack.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kStackImbalance));
  // The callee provably returns with sp shifted, so the caller's sp — and
  // any depth past the call — is unknown. (Balanced chains report a
  // concrete depth; see CallGraph.ReportsDepthAcrossBalancedChain.)
  EXPECT_EQ(report->max_stack_depth, -1);
}

TEST(Lint, FlagsOutOfPolicyUartStoreOnly) {
  auto program = assembler::assemble(read_negative("uart_attack_static.s"));
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  auto policy = memwatch::parse_policy(read_negative("uart.policy"),
                                       program->symbols);
  ASSERT_TRUE(policy.ok()) << policy.error().to_string();
  LintOptions options;
  options.policy = &*policy;
  auto report = lint_program(*program, options);
  ASSERT_TRUE(report.ok());
  // Exactly one finding: the attack store. The in-window driver store and
  // the .data accesses stay clean.
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_EQ(report->findings[0].kind, CheckKind::kPolicyViolation);
  EXPECT_NE(report->findings[0].message.find("uart"), std::string::npos);
}

TEST(Lint, FlagsUnresolvedIndirectJump) {
  auto report = lint_source(read_negative("jump_table_unresolved.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUnresolvedIndirect));
}

TEST(Lint, StackDepthSumsOverCallChain) {
  auto report = lint_source(R"(
_start:
    addi sp, sp, -32
    call helper
    addi sp, sp, 32
    li a0, 0
    li a7, 93
    ecall
helper:
    addi sp, sp, -48
    sw zero, 0(sp)
    addi sp, sp, 48
    ret
  )");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_string();
  EXPECT_EQ(report->max_stack_depth, 80);
}

TEST(Lint, FlagsDeadWriteAcrossCallBoundary) {
  // `li t0, 7; call helper` where the callee never reads t0 and the caller
  // overwrites it: only the refined call summary can prove the write dead.
  auto report = lint_source(read_negative("dead_write_callee.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kDeadWrite));
}

TEST(Lint, CleanWhenValueFlowsIntoCallee) {
  // Regression companion: the same shape but the callee reads the value —
  // the old intraprocedural false positive.
  auto report = lint_source(read_negative("dead_write_call_clean.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_string();
}

TEST(Lint, FlagsUnusedResult) {
  auto report = lint_source(read_negative("unused_result.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kUnusedResult));
}

TEST(Lint, FlagsRecursion) {
  auto report = lint_source(read_negative("recursion_unbounded.s"));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(has_kind(*report, CheckKind::kRecursion));
}

TEST(Lint, FlagsStaticStackOverflowOnlyWithLimit) {
  const std::string source = read_negative("stack_overflow_static.s");
  // The check is opt-in: with no limit the 4 MiB + 4 KiB frame is legal.
  auto unlimited = lint_source(source);
  ASSERT_TRUE(unlimited.ok());
  EXPECT_TRUE(unlimited->clean()) << unlimited->to_string();
  EXPECT_EQ(unlimited->max_stack_depth, 0x401000);

  LintOptions options;
  options.stack_limit = 4 << 20;  // the VP's RAM size
  auto limited = lint_source(source, options);
  ASSERT_TRUE(limited.ok());
  EXPECT_TRUE(has_kind(*limited, CheckKind::kStackOverflow));
}

TEST(Lint, FindingToJson) {
  auto report = lint_source(read_negative("unused_result.s"));
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->findings.empty());
  const std::string json = report->findings[0].to_json();
  EXPECT_NE(json.find("\"check\":\"unused-result\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pc\":\"0x"), std::string::npos) << json;
  EXPECT_NE(json.find("\"function\":\"compute\""), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
}

// -------------------------------------------------------------- call graph

int fn_index(const Analysis& an, std::string_view name) {
  for (std::size_t i = 0; i < an.cfg.functions.size(); ++i) {
    if (an.cfg.functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int bottom_up_pos(const CallGraph& graph, int fn) {
  for (std::size_t i = 0; i < graph.bottom_up.size(); ++i) {
    if (graph.bottom_up[i] == static_cast<u32>(fn)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(CallGraph, DirectCallEdges) {
  auto analysis = analyze_source(R"(
_start:
    call outer
    li a7, 93
    ecall
outer:
    addi sp, sp, -16
    sw ra, 12(sp)
    call leaf
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
leaf:
    addi a0, zero, 1
    ret
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const CallGraph& graph = analysis->graph;
  const int start = fn_index(*analysis, "_start");
  const int outer = fn_index(*analysis, "outer");
  const int leaf = fn_index(*analysis, "leaf");
  ASSERT_GE(start, 0);
  ASSERT_GE(outer, 0);
  ASSERT_GE(leaf, 0);
  EXPECT_EQ(graph.callees[start], std::vector<u32>{static_cast<u32>(outer)});
  EXPECT_EQ(graph.callees[outer], std::vector<u32>{static_cast<u32>(leaf)});
  EXPECT_EQ(graph.callers[leaf], std::vector<u32>{static_cast<u32>(outer)});
  for (std::size_t f = 0; f < graph.poisoned.size(); ++f) {
    EXPECT_FALSE(graph.poisoned[f]) << analysis->cfg.functions[f].name;
    EXPECT_FALSE(graph.recursive[f]) << analysis->cfg.functions[f].name;
  }
  // Tarjan order: callees before callers.
  EXPECT_LT(bottom_up_pos(graph, leaf), bottom_up_pos(graph, outer));
  EXPECT_LT(bottom_up_pos(graph, outer), bottom_up_pos(graph, start));
}

TEST(CallGraph, ResolvedIndirectJumpNeedsNoPoison) {
  // A la+jr trampoline the resolver folds into plain CFG edges: nothing is
  // poisoned, no call-graph edge is lost.
  auto analysis = analyze_source(R"(
    la t0, target
    jalr zero, 0(t0)
target:
    li a7, 93
    ecall
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_TRUE(analysis->unresolved.empty());
  for (std::size_t f = 0; f < analysis->graph.poisoned.size(); ++f) {
    EXPECT_FALSE(analysis->graph.poisoned[f]);
    EXPECT_FALSE(analysis->graph.tainted[f]);
  }
}

TEST(CallGraph, SelfRecursionMarked) {
  auto analysis = analyze_source(read_negative("recursion_unbounded.s"));
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const int start = fn_index(*analysis, "_start");
  const int countdown = fn_index(*analysis, "countdown");
  ASSERT_GE(countdown, 0);
  EXPECT_TRUE(analysis->graph.recursive[countdown]);
  EXPECT_FALSE(analysis->graph.recursive[start]);
  // No summary exists for a cycle member: the ABI fallback stays in force.
  EXPECT_TRUE(analysis->summaries[countdown].conservative);
}

TEST(CallGraph, MutualRecursionSharesScc) {
  auto analysis = analyze_source(R"(
_start:
    li a0, 4
    call even
    li a7, 93
    ecall
even:
    beqz a0, even_yes
    addi sp, sp, -16
    sw ra, 12(sp)
    addi a0, a0, -1
    call odd
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
even_yes:
    li a0, 1
    ret
odd:
    beqz a0, odd_no
    addi sp, sp, -16
    sw ra, 12(sp)
    addi a0, a0, -1
    call even
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
odd_no:
    li a0, 0
    ret
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const int start = fn_index(*analysis, "_start");
  const int even = fn_index(*analysis, "even");
  const int odd = fn_index(*analysis, "odd");
  ASSERT_GE(even, 0);
  ASSERT_GE(odd, 0);
  EXPECT_TRUE(analysis->graph.recursive[even]);
  EXPECT_TRUE(analysis->graph.recursive[odd]);
  EXPECT_EQ(analysis->graph.scc_id[even], analysis->graph.scc_id[odd]);
  EXPECT_NE(analysis->graph.scc_id[start], analysis->graph.scc_id[even]);
}

TEST(CallGraph, UnresolvedJalrPoisonsCallers) {
  auto analysis = analyze_source(R"(
_start:
    call wild
    li a7, 93
    ecall
wild:
    csrr t0, mcycle
    jalr zero, 0(t0)
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const int start = fn_index(*analysis, "_start");
  const int wild = fn_index(*analysis, "wild");
  ASSERT_GE(wild, 0);
  EXPECT_TRUE(analysis->graph.poisoned[wild]);
  EXPECT_TRUE(analysis->graph.tainted[wild]);
  // Poisoning is local; the taint is what propagates to callers.
  EXPECT_FALSE(analysis->graph.poisoned[start]);
  EXPECT_TRUE(analysis->graph.tainted[start]);
  EXPECT_TRUE(analysis->summaries[wild].conservative);
  EXPECT_TRUE(analysis->summaries[start].conservative);
}

TEST(CallGraph, ReportsDepthAcrossBalancedChain) {
  // The summary proves square_plus balanced, so the whole-chain depth is
  // concrete. (Contrast Lint.FlagsUnbalancedStackAndReportsDepth, where an
  // unbalanced callee makes the post-call sp — and the depth — unknown.)
  auto workload = core::find_workload("callchain");
  ASSERT_TRUE(workload.ok());
  auto report = lint_source(workload->source);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->to_string();
  EXPECT_EQ(report->max_stack_depth, 16);
}

// --------------------------------------------------------------- summaries

TEST(Summaries, ConstantReturnAndPreservedRegisters) {
  auto analysis = analyze_source(R"(
_start:
    call answer
    mv s0, a0
    add a0, s0, s0
    li a7, 93
    ecall
answer:
    li a0, 21
    ret
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const int answer = fn_index(*analysis, "answer");
  ASSERT_GE(answer, 0);
  const FunctionSummary& sum = analysis->summaries[answer];
  EXPECT_FALSE(sum.conservative);
  EXPECT_TRUE(sum.returns);
  EXPECT_TRUE(sum.sp_balanced);
  EXPECT_NE(sum.must_write & reg_bit(10), 0u);  // a0 written on every path
  EXPECT_TRUE(sum.ret0.is_const());
  EXPECT_EQ(sum.ret0.const_value(), 21);
  const CallEffect effect = sum.effect();
  EXPECT_TRUE(effect.refined);
  EXPECT_EQ(effect.clobbered & reg_bit(8), 0u);  // s0 survives the call
}

TEST(Summaries, CalleePreservationProvesBranchInfeasible) {
  // s1 holds 5 across the call (the summary shows `answer` never touches
  // it), so the `bne` is statically not taken and the div is dead — an
  // interprocedural-only conclusion.
  auto analysis = analyze_source(R"(
_start:
    li s1, 5
    call answer
    li t0, 5
    bne s1, t0, bad
    li a0, 0
    li a7, 93
    ecall
bad:
    div t1, t2, t0
    li a7, 93
    ecall
answer:
    li a0, 21
    ret
  )");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  const auto ops = reachable_ops(*analysis);
  EXPECT_FALSE(ops[static_cast<unsigned>(isa::Op::kDiv)]);
}

// ------------------------------------------------------------------ triage

Result<StaticTriage> triage_source(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok())
      << (program.ok() ? "" : program.error().to_string());
  return StaticTriage::build(*program);
}

// All addresses below assume the 4-byte encodings the assembler emits,
// starting at the 0x80000000 load base.
constexpr char kTriageProgram[] = R"(
_start:
    li t0, 7
    addi t1, t0, 0
    beq t0, zero, skip
    addi t2, zero, 5
skip:
    mv a0, t1
    li a7, 93
    ecall
)";

TEST(Triage, PrunesDeadRegisterFaultOnly) {
  auto triage = triage_source(kTriageProgram);
  ASSERT_TRUE(triage.ok()) << triage.error().to_string();
  // t2 (x7) is written but never read: any value it holds is unobservable.
  const auto dead = triage->gpr_fault(7);
  EXPECT_TRUE(dead.pruned);
  EXPECT_STREQ(dead.reason, "dead-register");
  // t0 (x5) feeds the exit value; x0 faults model hardware the triage
  // cannot reason about.
  EXPECT_FALSE(triage->gpr_fault(5).pruned);
  EXPECT_FALSE(triage->gpr_fault(0).pruned);
}

TEST(Triage, PrunesValueEquivalentMutant) {
  auto program = assembler::assemble(kTriageProgram);
  ASSERT_TRUE(program.ok());
  // `addi t1, t0, 0` vs `andi t1, t0, -1`: t0 is the constant 7 at the
  // only occurrence, so both write the same 7 into t1.
  auto variant = assembler::assemble(R"(
_start:
    li t0, 7
    andi t1, t0, -1
    beq t0, zero, skip
    addi t2, zero, 5
skip:
    mv a0, t1
    li a7, 93
    ecall
)");
  ASSERT_TRUE(variant.ok());
  auto original = program->read_word(0x80000004);
  auto mutated = variant->read_word(0x80000004);
  ASSERT_TRUE(original.ok() && mutated.ok());
  ASSERT_NE(*original, *mutated);
  auto triage = StaticTriage::build(*program);
  ASSERT_TRUE(triage.ok()) << triage.error().to_string();
  const auto decision = triage->mutant(0x80000004, 4, *original, *mutated);
  EXPECT_TRUE(decision.pruned);
  EXPECT_STREQ(decision.reason, "value-equivalent");
}

TEST(Triage, PrunesBranchEquivalentMutant) {
  auto program = assembler::assemble(kTriageProgram);
  ASSERT_TRUE(program.ok());
  // `beq t0, zero` vs `blt t0, zero` with t0 = 7: both provably fall
  // through.
  auto variant = assembler::assemble(R"(
_start:
    li t0, 7
    addi t1, t0, 0
    blt t0, zero, skip
    addi t2, zero, 5
skip:
    mv a0, t1
    li a7, 93
    ecall
)");
  ASSERT_TRUE(variant.ok());
  auto original = program->read_word(0x80000008);
  auto mutated = variant->read_word(0x80000008);
  ASSERT_TRUE(original.ok() && mutated.ok());
  auto triage = StaticTriage::build(*program);
  ASSERT_TRUE(triage.ok()) << triage.error().to_string();
  const auto decision = triage->mutant(0x80000008, 4, *original, *mutated);
  EXPECT_TRUE(decision.pruned);
  EXPECT_STREQ(decision.reason, "branch-equivalent");
}

TEST(Triage, PrunesDeadWriteMutantButNotLiveOne) {
  auto program = assembler::assemble(kTriageProgram);
  ASSERT_TRUE(program.ok());
  auto triage = StaticTriage::build(*program);
  ASSERT_TRUE(triage.ok()) << triage.error().to_string();
  // `addi t2, zero, 5` -> `addi t2, zero, 7`: different values, but t2 is
  // dead after the write.
  auto dead_site = program->read_word(0x8000000c);
  ASSERT_TRUE(dead_site.ok());
  const auto dead = triage->mutant(0x8000000c, 4, *dead_site,
                                   *dead_site ^ (1u << 21));
  EXPECT_TRUE(dead.pruned);
  EXPECT_STREQ(dead.reason, "dead-write");
  // `addi t1, t0, 0` -> `addi t1, t0, 1`: t1 is the exit value, and 8 != 7.
  auto live_site = program->read_word(0x80000004);
  ASSERT_TRUE(live_site.ok());
  EXPECT_FALSE(
      triage->mutant(0x80000004, 4, *live_site, *live_site | (1u << 20))
          .pruned);
}

TEST(Triage, PrunesUnreachableCodeAndStuckAtNop) {
  constexpr char kDeadArm[] = R"(
_start:
    li a0, 0
    j exit
dead:
    addi a0, a0, 1
exit:
    li a7, 93
    ecall
)";
  auto program = assembler::assemble(kDeadArm);
  ASSERT_TRUE(program.ok());
  auto triage = StaticTriage::build(*program);
  ASSERT_TRUE(triage.ok()) << triage.error().to_string();

  // The `dead:` instruction at +8 is never reached and never read as data.
  const auto flip = triage->code_fault(0x80000008, /*stuck_at=*/false,
                                       /*bit=*/3, /*stuck_value=*/false);
  EXPECT_TRUE(flip.pruned);
  EXPECT_STREQ(flip.reason, "unreachable-code");
  auto dead_word = program->read_word(0x80000008);
  ASSERT_TRUE(dead_word.ok());
  EXPECT_TRUE(
      triage->mutant(0x80000008, 4, *dead_word, *dead_word ^ (1u << 20))
          .pruned);

  // A stuck-at whose forced value matches the image bit is the identity.
  auto first = program->read_word(0x80000000);
  ASSERT_TRUE(first.ok());
  const bool bit2 = ((*first >> 2) & 1u) != 0;
  const auto identity =
      triage->code_fault(0x80000000, /*stuck_at=*/true, /*bit=*/2, bit2);
  EXPECT_TRUE(identity.pruned);
  EXPECT_STREQ(identity.reason, "stuck-at-nop");
  EXPECT_FALSE(
      triage->code_fault(0x80000000, /*stuck_at=*/true, /*bit=*/2, !bit2)
          .pruned);
}

TEST(Triage, ParsesModeFlagValues) {
  EXPECT_EQ(parse_triage_mode(""), TriageMode::kOn);
  EXPECT_EQ(parse_triage_mode("on"), TriageMode::kOn);
  EXPECT_EQ(parse_triage_mode("off"), TriageMode::kOff);
  EXPECT_EQ(parse_triage_mode("verify"), TriageMode::kVerify);
  EXPECT_EQ(parse_triage_mode("bogus"), std::nullopt);
}

TEST(Triage, FaultCampaignOnMatchesOffForUnpruned) {
  auto workload = core::find_workload("callchain");
  ASSERT_TRUE(workload.ok());
  auto program = assembler::assemble(workload->source);
  ASSERT_TRUE(program.ok());
  fault::CampaignConfig config;
  config.seed = 11;
  config.mutant_count = 80;
  config.jobs = 1;
  fault::Campaign off_campaign(*program, config);
  auto off = off_campaign.run();
  config.triage = TriageMode::kOn;
  fault::Campaign on_campaign(*program, config);
  auto on = on_campaign.run();
  ASSERT_TRUE(off.ok() && on.ok());

  // Triage never changes the fault list, and every non-pruned slot is
  // bit-identical to the untriaged campaign.
  EXPECT_GT(on->pruned_count, 0u);
  ASSERT_EQ(off->mutants.size(), on->mutants.size());
  for (std::size_t i = 0; i < off->mutants.size(); ++i) {
    const auto& base = off->mutants[i];
    const auto& triaged = on->mutants[i];
    ASSERT_EQ(base.spec.to_string(), triaged.spec.to_string());
    if (triaged.pruned) {
      EXPECT_EQ(triaged.outcome, fault::Outcome::kMasked)
          << triaged.prune_reason;
    } else {
      EXPECT_EQ(base.outcome, triaged.outcome) << base.spec.to_string();
      EXPECT_EQ(base.exit_code, triaged.exit_code);
      EXPECT_EQ(base.instructions, triaged.instructions);
    }
  }
}

TEST(Triage, FaultVerifyPassesOnStandardWorkloads) {
  // The soundness gate: execute every pruned fault anyway and fail on any
  // static/dynamic disagreement.
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = assembler::assemble(workload.source);
    ASSERT_TRUE(program.ok()) << workload.name;
    fault::CampaignConfig config;
    config.seed = 3;
    config.mutant_count = 60;
    config.triage = TriageMode::kVerify;
    fault::Campaign campaign(*program, config);
    auto result = campaign.run();
    EXPECT_TRUE(result.ok())
        << workload.name << ": "
        << (result.ok() ? "" : result.error().to_string());
  }
}

TEST(Triage, MutationVerifyPassesOnStandardWorkloads) {
  for (const core::Workload& workload : core::standard_workloads()) {
    auto program = assembler::assemble(workload.source);
    ASSERT_TRUE(program.ok()) << workload.name;
    mutation::MutationConfig config;
    config.max_mutants = 60;
    config.triage = TriageMode::kVerify;
    mutation::MutationCampaign campaign(*program, config);
    auto score = campaign.run();
    EXPECT_TRUE(score.ok())
        << workload.name << ": "
        << (score.ok() ? "" : score.error().to_string());
  }
}

// ------------------------------------------------------------- policy file

TEST(PolicyFile, ParsesRegionsAndDefaults) {
  auto policy = memwatch::parse_policy(R"(
# comment
default deny
region rom 0x1000 0x100 perm r
region dev 0x2000 16 perm rw pc 0x80 0x90
)");
  ASSERT_TRUE(policy.ok()) << policy.error().to_string();
  EXPECT_FALSE(policy->default_allow);
  ASSERT_EQ(policy->regions.size(), 2u);
  EXPECT_TRUE(policy->regions[0].allow_read);
  EXPECT_FALSE(policy->regions[0].allow_write);
  EXPECT_TRUE(policy->regions[1].pc_allowed(0x84));
  EXPECT_FALSE(policy->regions[1].pc_allowed(0x94));
}

TEST(PolicyFile, ResolvesSymbolsAndReportsErrors) {
  std::map<std::string, u32> symbols{{"uart", 0x10000000u}};
  auto ok = memwatch::parse_policy("region u uart 8 perm w\n", symbols);
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  EXPECT_EQ(ok->regions[0].base, 0x10000000u);

  auto bad = memwatch::parse_policy("region u nosuch 8\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace s4e::dataflow
