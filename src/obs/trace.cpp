#include "obs/trace.hpp"

#include <string>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/rvc.hpp"

namespace s4e::obs {

namespace {

// The disassembler never emits quotes or backslashes today, but the trace
// promises well-formed JSON, so escape defensively.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
    out.push_back(c);
  }
  return out;
}

std::string disassemble_encoding(u32 encoding, u32 pc) {
  auto decoded = s4e::isa::decoder().decode(encoding);
  if (decoded.ok()) return s4e::isa::disassemble_at(*decoded, pc);
  if (s4e::isa::is_compressed(static_cast<u16>(encoding))) {
    auto decompressed = s4e::isa::decompress(static_cast<u16>(encoding));
    if (decompressed.ok()) {
      return s4e::isa::disassemble_at(*decompressed, pc);
    }
  }
  return "<illegal>";
}

}  // namespace

void JsonlTracePlugin::on_insn_exec(const s4e_insn_info& insn) {
  ++icount_;
  if (!budget_left()) return;
  ++emitted_;
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"insn\",\"n\":%llu,\"pc\":\"0x%08x\","
               "\"raw\":\"0x%08x\",\"asm\":\"%s\"}\n",
               static_cast<unsigned long long>(icount_), insn.address,
               insn.encoding,
               json_escape(disassemble_encoding(insn.encoding, insn.address))
                   .c_str());
}

void JsonlTracePlugin::on_mem(const s4e_mem_event& event) {
  if (!budget_left()) return;
  ++emitted_;
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"mem\",\"pc\":\"0x%08x\",\"addr\":\"0x%08x\","
               "\"size\":%u,\"store\":%u,\"val\":\"0x%08x\"}\n",
               event.pc, event.vaddr, event.size, event.is_store,
               event.value);
}

void JsonlTracePlugin::on_trap(const s4e_trap_event& event) {
  ++lines_;
  std::fprintf(out_,
               "{\"t\":\"trap\",\"cause\":\"0x%08x\",\"epc\":\"0x%08x\","
               "\"tval\":\"0x%08x\"}\n",
               event.cause, event.epc, event.tval);
}

void JsonlTracePlugin::on_exit(int exit_code) {
  ++lines_;
  std::fprintf(out_, "{\"t\":\"exit\",\"code\":%d}\n", exit_code);
  std::fflush(out_);
}

}  // namespace s4e::obs
