file(REMOVE_RECURSE
  "CMakeFiles/s4e_coverage.dir/coverage.cpp.o"
  "CMakeFiles/s4e_coverage.dir/coverage.cpp.o.d"
  "libs4e_coverage.a"
  "libs4e_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
