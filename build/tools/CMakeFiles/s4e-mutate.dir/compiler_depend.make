# Empty compiler generated dependencies file for s4e-mutate.
# This may be replaced when dependencies are built.
