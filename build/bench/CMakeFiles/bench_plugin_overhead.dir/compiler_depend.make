# Empty compiler generated dependencies file for bench_plugin_overhead.
# This may be replaced when dependencies are built.
