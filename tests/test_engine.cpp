// Execution-engine suite (`ctest -L engine`): the chained threaded-dispatch
// core must be observationally identical to plain per-block dispatch, and
// every event that invalidates code must sever live chain links.
//
//   E-P1  chained and unchained execution are bit-identical (registers,
//         data-memory hash, icount, cycles) over torture seeds
//   E-R1  a breakpoint inserted mid-run severs chains and still stops
//         exactly at the breakpointed pc
//   E-R2  invalidate_range on a chained successor really drops the stale
//         code — a host-side patch takes effect in both engines
//   E-R3  snapshot-restore with live chains replays to the same final state
//   E-C1  the engine counters move the way the design says they must
//   E-M1  the obs MetricsRegistry export carries the same numbers
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "obs/engine_metrics.hpp"
#include "testgen/testgen.hpp"
#include "vp/machine.hpp"
#include "vp/runner.hpp"
#include "vp/snapshot.hpp"

namespace s4e {
namespace {

std::vector<testgen::GeneratedProgram> programs_for_seed(u64 seed,
                                                         unsigned count) {
  testgen::TortureConfig config;
  config.seed = seed;
  config.programs = count;
  return testgen::torture_suite(config);
}

// A call-heavy hot loop: exercises fall-through chains, the taken-edge
// chain (bnez), the indirect jump cache (ret), and — at 2000 iterations —
// superblock formation (threshold 64).
const char* kCallLoop = R"(
_start:
    li s0, 0
    li s1, 2000
loop:
    call bump
    addi s1, s1, -1
    bnez s1, loop
    mv a0, s0
    li a7, 93
    ecall
bump:
    addi s0, s0, 1
    addi s0, s0, 1
    ret
)";

assembler::Program assemble_or_die(const char* source) {
  auto program = assembler::assemble(source);
  S4E_CHECK(program.ok());
  return *program;
}

vp::MachineConfig unchained_config() {
  vp::MachineConfig config;
  config.enable_chaining = false;
  config.enable_superblocks = false;
  return config;
}

void expect_same_state(vp::Machine& a, vp::Machine& b,
                       const vp::RunResult& ra, const vp::RunResult& rb,
                       const assembler::Program& program,
                       const std::string& name) {
  EXPECT_EQ(ra.reason, rb.reason) << name;
  EXPECT_EQ(ra.exit_code, rb.exit_code) << name;
  EXPECT_EQ(ra.instructions, rb.instructions) << name;
  EXPECT_EQ(ra.cycles, rb.cycles) << name;
  EXPECT_EQ(ra.final_pc, rb.final_pc) << name;
  for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
    EXPECT_EQ(a.cpu().read_gpr(reg), b.cpu().read_gpr(reg))
        << name << " x" << reg;
  }
  EXPECT_EQ(vp::data_memory_hash(a, program), vp::data_memory_hash(b, program))
      << name;
}

class EngineTortureSeed : public ::testing::TestWithParam<u64> {};

// E-P1 — the strongest engine property: over generated torture programs,
// full chaining + superblocks produces *exactly* what per-block dispatch
// produces, down to the cycle count and the final data-memory hash.
TEST_P(EngineTortureSeed, ChainedAndUnchainedBitIdentical) {
  for (const auto& test : programs_for_seed(GetParam(), 3)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    vp::Machine chained;  // default config: chaining + superblocks on
    ASSERT_TRUE(chained.load_program(*program).ok());
    const auto chained_result = chained.run();

    vp::Machine unchained(unchained_config());
    ASSERT_TRUE(unchained.load_program(*program).ok());
    const auto unchained_result = unchained.run();

    expect_same_state(chained, unchained, chained_result, unchained_result,
                      *program, test.name);

    // Middle ablation point: chaining without superblocks.
    vp::MachineConfig no_super;
    no_super.enable_superblocks = false;
    vp::Machine chain_only(no_super);
    ASSERT_TRUE(chain_only.load_program(*program).ok());
    const auto chain_only_result = chain_only.run();
    expect_same_state(chained, chain_only, chained_result, chain_only_result,
                      *program, test.name + " (no superblocks)");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineTortureSeed,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// E-R1 — insert a breakpoint while chains are live mid-run: the insertion
// must sever the links (a stale block->block edge would fly straight past
// the per-dispatch breakpoint check) and the run must stop exactly there.
TEST(EngineChaining, BreakpointSeversChainsMidRun) {
  const assembler::Program program = assemble_or_die(kCallLoop);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  const auto paused = machine.run_slice(3000);
  ASSERT_EQ(paused.reason, vp::StopReason::kDebugSlice);
  ASSERT_GT(machine.engine_stats().chain_patches, 0u)
      << "slice too short to patch any chain edges";
  const u64 severs_before = machine.tb_cache().chain_severs();

  // The `bump` callee body starts with `addi s0, s0, 1` (0x00140413); its
  // block is a chained/jump-cached successor of the loop body.
  u32 word = 0;
  u32 target = 0;
  for (u32 address = program.entry;; address += 4) {
    ASSERT_TRUE(machine.bus().ram_read(address, &word, 4).ok());
    if (word == 0x00140413u) {
      target = address;
      break;
    }
  }
  machine.add_breakpoint(target);
  EXPECT_GT(machine.tb_cache().chain_severs(), severs_before);

  const auto stopped = machine.run(1u << 20);
  EXPECT_EQ(stopped.reason, vp::StopReason::kDebugBreak);
  EXPECT_EQ(machine.cpu().pc, target);

  // Resume over the breakpoint and finish: the run must still compute the
  // exact unchained result.
  ASSERT_TRUE(machine.remove_breakpoint(target));
  const auto done = machine.run();
  ASSERT_EQ(done.reason, vp::StopReason::kExitEcall);

  vp::Machine reference(unchained_config());
  ASSERT_TRUE(reference.load_program(program).ok());
  const auto ref = reference.run();
  EXPECT_EQ(done.exit_code, ref.exit_code);
  EXPECT_EQ(done.instructions, ref.instructions);
  EXPECT_EQ(done.cycles, ref.cycles);
}

// E-R2 — invalidate_range on a chained successor: patch the callee body
// from the host mid-run, invalidate, and resume. A stale chain or jump
// cache entry would keep executing the old translation; both engines must
// instead pick up the patched code and agree exactly.
TEST(EngineChaining, InvalidateRangeOnChainedSuccessor) {
  const assembler::Program program = assemble_or_die(kCallLoop);

  auto run_with_patch = [&](const vp::MachineConfig& config) {
    vp::Machine machine(config);
    S4E_CHECK(machine.load_program(program).ok());
    const auto paused = machine.run_slice(3000);
    S4E_CHECK(paused.reason == vp::StopReason::kDebugSlice);

    u32 word = 0;
    u32 target = 0;
    for (u32 address = program.entry;; address += 4) {
      S4E_CHECK(machine.bus().ram_read(address, &word, 4).ok());
      if (word == 0x00140413u) {  // first `addi s0, s0, 1` of `bump`
        target = address;
        break;
      }
    }
    // Patch the immediate from 1 to 5 and drop the stale translation.
    const u32 patched = 0x00540413u;  // addi s0, s0, 5
    S4E_CHECK(machine.bus().ram_write(target, &patched, 4).ok());
    machine.invalidate_code(target, 4);

    const auto done = machine.run();
    S4E_CHECK(done.reason == vp::StopReason::kExitEcall);
    return std::pair<u64, int>{done.instructions, done.exit_code};
  };

  const auto chained = run_with_patch(vp::MachineConfig{});
  const auto unchained = run_with_patch(unchained_config());
  EXPECT_EQ(chained.first, unchained.first);
  EXPECT_EQ(chained.second, unchained.second);
  // The patch changes one of the two +1s to +5: the final count must show
  // the new immediate (i.e. exceed the unpatched 2 * 2000 = 4000 total).
  EXPECT_GT(chained.second, 4000);
}

// E-R3 — snapshot while chains are live, run to the end, restore, run
// again: the replay must land on the identical final state even though the
// restore dropped translations on dirty pages out from under live links.
TEST(EngineChaining, SnapshotRestoreWithLiveChains) {
  const assembler::Program program = assemble_or_die(kCallLoop);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  const auto paused = machine.run_slice(5000);
  ASSERT_EQ(paused.reason, vp::StopReason::kDebugSlice);
  ASSERT_GT(machine.engine_stats().chain_patches, 0u);

  vp::Snapshot snap;
  machine.save_state(snap);

  const auto first = machine.run();
  ASSERT_EQ(first.reason, vp::StopReason::kExitEcall);
  const u64 first_hash = vp::data_memory_hash(machine, program);
  std::array<u32, isa::kGprCount> first_gprs{};
  for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
    first_gprs[reg] = machine.cpu().read_gpr(reg);
  }

  machine.restore_state(snap);
  const auto replay = machine.run();
  EXPECT_EQ(replay.reason, first.reason);
  EXPECT_EQ(replay.exit_code, first.exit_code);
  EXPECT_EQ(replay.instructions, first.instructions);
  EXPECT_EQ(replay.cycles, first.cycles);
  for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
    EXPECT_EQ(machine.cpu().read_gpr(reg), first_gprs[reg]) << "x" << reg;
  }
  EXPECT_EQ(vp::data_memory_hash(machine, program), first_hash);
}

// E-C1 — the counters must reflect the mechanisms: a hot call loop patches
// chains, rides them, hits the jump cache on `ret`, and crosses the
// superblock threshold; the unchained ablation does none of that.
TEST(EngineCounters, HotLoopExercisesEveryMechanism) {
  const assembler::Program program = assemble_or_die(kCallLoop);

  vp::Machine chained;
  ASSERT_TRUE(chained.load_program(program).ok());
  ASSERT_EQ(chained.run().reason, vp::StopReason::kExitEcall);
  const vp::EngineStats& stats = chained.engine_stats();
  EXPECT_GT(stats.blocks_fast, 0u);
  EXPECT_GT(stats.chain_patches, 0u);
  EXPECT_GT(stats.chain_follows, stats.chain_patches);
  EXPECT_GT(stats.jump_cache_hits, 0u);
  EXPECT_GT(stats.superblocks_formed, 0u);
  EXPECT_GT(chained.tb_cache().superblock_count(), 0u);

  vp::Machine unchained(unchained_config());
  ASSERT_TRUE(unchained.load_program(program).ok());
  ASSERT_EQ(unchained.run().reason, vp::StopReason::kExitEcall);
  EXPECT_EQ(unchained.engine_stats().chain_patches, 0u);
  EXPECT_EQ(unchained.engine_stats().jump_cache_hits, 0u);
  EXPECT_EQ(unchained.engine_stats().superblocks_formed, 0u);
  EXPECT_GT(unchained.engine_stats().blocks_fast, 0u);

  // A per-instruction plugin forces the careful loop — the fast-block
  // counter must stay frozen while careful dispatch takes over.
  vp::Machine careful;
  ASSERT_TRUE(careful.load_program(program).ok());
  auto noop_cb = [](void*, s4e_vm*, const s4e_insn_info*) {};
  careful.add_insn_exec_cb(noop_cb, nullptr);
  ASSERT_EQ(careful.run().reason, vp::StopReason::kExitEcall);
  EXPECT_EQ(careful.engine_stats().blocks_fast, 0u);
  EXPECT_GT(careful.engine_stats().blocks_careful, 0u);
}

// E-M1 — the MetricsRegistry export must carry exactly the machine's
// counters (one shard; counters aggregate by addition across machines).
TEST(EngineMetrics, RegistryExportMatchesMachineCounters) {
  const assembler::Program program = assemble_or_die(kCallLoop);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  ASSERT_EQ(machine.run().reason, vp::StopReason::kExitEcall);

  obs::MetricsRegistry registry;
  const obs::EngineMetricIds ids = obs::register_engine_metrics(registry);
  registry.open_shards(1);
  obs::record_engine_metrics(registry.shard(0), ids, machine);

  const vp::EngineStats& stats = machine.engine_stats();
  EXPECT_EQ(registry.value(ids.chain_patches), stats.chain_patches);
  EXPECT_EQ(registry.value(ids.chain_follows), stats.chain_follows);
  EXPECT_EQ(registry.value(ids.jump_cache_hits), stats.jump_cache_hits);
  EXPECT_EQ(registry.value(ids.jump_cache_misses), stats.jump_cache_misses);
  EXPECT_EQ(registry.value(ids.superblocks_formed), stats.superblocks_formed);
  EXPECT_EQ(registry.value(ids.blocks_fast), stats.blocks_fast);
  EXPECT_EQ(registry.value(ids.blocks_careful), stats.blocks_careful);
  EXPECT_EQ(registry.value(ids.chain_severs),
            machine.tb_cache().chain_severs());
  EXPECT_EQ(registry.value(ids.tb_front_hits),
            machine.tb_cache().front_hits());
  EXPECT_EQ(registry.value(ids.tb_deep_hits), machine.tb_cache().deep_hits());
  EXPECT_EQ(registry.value(ids.tb_lookup_misses),
            machine.tb_cache().lookup_misses());
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"engine.chain_patches\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.tb_front_hits\""), std::string::npos);
}

}  // namespace
}  // namespace s4e
