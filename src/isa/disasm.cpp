#include "isa/disasm.hpp"

#include "common/strings.hpp"
#include "isa/csr.hpp"
#include "isa/registers.hpp"

namespace s4e::isa {

namespace {

std::string reg(unsigned index) { return std::string(gpr_abi_name(index)); }

std::string csr_text(u16 address) {
  if (auto name = csr_name(address)) return std::string(*name);
  return format("0x%03x", address);
}

}  // namespace

std::string disassemble(const Instr& instr) {
  const OpInfo& info = instr.info();
  const std::string m(info.mnemonic);
  switch (info.format) {
    case Format::kR:
      // A-extension syntax addresses through rs1: `lr.w rd, (rs1)`,
      // `amoadd.w rd, rs2, (rs1)`.
      if (instr.op == Op::kLrW) {
        return format("%s %s, (%s)", m.c_str(), reg(instr.rd).c_str(),
                      reg(instr.rs1).c_str());
      }
      if (info.op_class == OpClass::kAmo) {
        return format("%s %s, %s, (%s)", m.c_str(), reg(instr.rd).c_str(),
                      reg(instr.rs2).c_str(), reg(instr.rs1).c_str());
      }
      return format("%s %s, %s, %s", m.c_str(), reg(instr.rd).c_str(),
                    reg(instr.rs1).c_str(), reg(instr.rs2).c_str());
    case Format::kI:
      if (info.op_class == OpClass::kLoad) {
        return format("%s %s, %d(%s)", m.c_str(), reg(instr.rd).c_str(),
                      instr.imm, reg(instr.rs1).c_str());
      }
      if (instr.op == Op::kJalr) {
        return format("%s %s, %d(%s)", m.c_str(), reg(instr.rd).c_str(),
                      instr.imm, reg(instr.rs1).c_str());
      }
      return format("%s %s, %s, %d", m.c_str(), reg(instr.rd).c_str(),
                    reg(instr.rs1).c_str(), instr.imm);
    case Format::kIShift:
      return format("%s %s, %s, %u", m.c_str(), reg(instr.rd).c_str(),
                    reg(instr.rs1).c_str(), static_cast<unsigned>(instr.rs2));
    case Format::kS:
      return format("%s %s, %d(%s)", m.c_str(), reg(instr.rs2).c_str(),
                    instr.imm, reg(instr.rs1).c_str());
    case Format::kB:
      return format("%s %s, %s, %d", m.c_str(), reg(instr.rs1).c_str(),
                    reg(instr.rs2).c_str(), instr.imm);
    case Format::kU:
      return format("%s %s, 0x%x", m.c_str(), reg(instr.rd).c_str(),
                    static_cast<u32>(instr.imm) >> 12);
    case Format::kJ:
      return format("%s %s, %d", m.c_str(), reg(instr.rd).c_str(), instr.imm);
    case Format::kCsrReg:
      return format("%s %s, %s, %s", m.c_str(), reg(instr.rd).c_str(),
                    csr_text(instr.csr).c_str(), reg(instr.rs1).c_str());
    case Format::kCsrImm:
      return format("%s %s, %s, %u", m.c_str(), reg(instr.rd).c_str(),
                    csr_text(instr.csr).c_str(),
                    static_cast<unsigned>(instr.rs2));
    case Format::kNone:
      return m;
    case Format::kFence:
      return m;
  }
  return m;
}

std::string disassemble_at(const Instr& instr, u32 pc) {
  const OpInfo& info = instr.info();
  if (info.format == Format::kB || info.format == Format::kJ) {
    const u32 target = pc + static_cast<u32>(instr.imm);
    return disassemble(instr) + format("    # -> 0x%08x", target);
  }
  return disassemble(instr);
}

}  // namespace s4e::isa
