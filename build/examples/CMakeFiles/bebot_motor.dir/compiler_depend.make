# Empty compiler generated dependencies file for bebot_motor.
# This may be replaced when dependencies are built.
