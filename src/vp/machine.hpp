// The virtual prototype: RV32IM_Zicsr hart + bus + devices + TB cache +
// plugin dispatch. This is the ecosystem's QEMU stand-in.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"
#include "vp/bus.hpp"
#include "vp/cpu.hpp"
#include "vp/devices/clint.hpp"
#include "vp/devices/gpio.hpp"
#include "vp/devices/testdev.hpp"
#include "vp/devices/uart.hpp"
#include "vp/s4e_plugin.h"
#include "vp/snapshot.hpp"
#include "vp/tb_cache.hpp"
#include "vp/timing.hpp"

namespace s4e::vp {

struct MachineConfig {
  u32 ram_base = 0x8000'0000;
  u32 ram_size = 4u << 20;  // 4 MiB
  TimingParams timing;
  bool enable_tb_cache = true;  // E1 ablation switch
  // Engine ablation switches (BENCH_emulation.json records the chained vs
  // unchained split): chaining links blocks directly so hot code never
  // returns to central dispatch; superblocks splice hot edges into traces.
  bool enable_chaining = true;
  bool enable_superblocks = true;
  u64 max_instructions = 200'000'000;
  bool map_uart = true;
  bool map_clint = true;
  bool map_testdev = true;
  bool map_gpio = true;
  // SMP: number of harts (clamped to [1, Clint::kMaxHarts]). Harts execute
  // deterministic round-robin slices of `smp_slice_quantum` instructions on
  // the single global icount/cycle timeline — a fixed quantum makes the
  // cross-hart interleaving a pure function of the program, so SMP runs are
  // bit-reproducible. `force_slice_scheduler` engages the slice machinery
  // even with one hart (the N=1 determinism property test rides on this).
  unsigned num_harts = 1;
  u64 smp_slice_quantum = kChainQuantum;
  bool force_slice_scheduler = false;
};

// Why the run loop stopped.
enum class StopReason : u8 {
  kExitEcall,        // ecall exit convention (a7 = 93)
  kExitTestDevice,   // write to the test finisher
  kExitRequested,    // s4e_request_exit() from a plugin
  kEbreak,           // hit ebreak with no trap handler
  kTrapUnhandled,    // synchronous trap with mtvec == 0
  kMaxInstructions,  // instruction budget exhausted (hang detector)
  kWfiHalt,          // wfi with timer interrupts disabled
  kDebugBreak,       // stopped on a debug breakpoint (before executing it)
  kDebugWatch,       // stopped on a data watchpoint (after the access)
  kDebugStep,        // single step completed
  kDebugInterrupt,   // request_debug_stop() (debugger Ctrl-C)
  kDebugSlice,       // run_slice() budget exhausted; execution continues
};

std::string_view to_string(StopReason reason) noexcept;

// Data-watchpoint trigger condition (GDB Z2/Z3/Z4).
enum class WatchKind : u8 { kWrite, kRead, kAccess };

struct RunResult {
  StopReason reason = StopReason::kMaxInstructions;
  int exit_code = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u32 final_pc = 0;
  u32 trap_cause = 0;  // for kTrapUnhandled
  // For kDebugBreak: the breakpoint PC. For kDebugWatch: the accessed data
  // address, with `watch_kind` naming the matched watchpoint's condition.
  u32 debug_addr = 0;
  WatchKind watch_kind = WatchKind::kWrite;
  // Hart that was active when the run stopped (breakpoint/trap attribution).
  unsigned hart = 0;
  std::string detail;

  bool normal_exit() const noexcept {
    return reason == StopReason::kExitEcall ||
           reason == StopReason::kExitTestDevice ||
           reason == StopReason::kExitRequested;
  }

  // True for the four debugger-initiated stops: execution can continue and
  // exit callbacks have not fired.
  bool debug_stop() const noexcept {
    return reason == StopReason::kDebugBreak ||
           reason == StopReason::kDebugWatch ||
           reason == StopReason::kDebugStep ||
           reason == StopReason::kDebugInterrupt ||
           reason == StopReason::kDebugSlice;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Copy a program's sections into RAM, set the entry PC and the stack
  // pointer (top of RAM). Does not reset counters — call reset() to rerun.
  Status load_program(const assembler::Program& program);

  // Run until a stop condition; repeated calls continue execution.
  RunResult run();
  // Run at most `max_insns` further instructions.
  RunResult run(u64 max_insns);

  // --- Debug run control (the GDB stub's machine interface; see src/debug).

  // Execute exactly one instruction and stop. Returns kDebugStep when the
  // instruction completed uneventfully, otherwise the same taxonomy as
  // run() (exits, traps, watchpoint hits). A breakpoint at the *current* PC
  // is deliberately not re-checked, so step() is also the "step over the
  // breakpoint we are stopped on" resume primitive.
  RunResult step();

  // Run at most `max_insns` instructions as one bounded debug slice: budget
  // exhaustion returns kDebugSlice (a pause — exit plugins do not fire)
  // instead of kMaxInstructions. The debug server's continue loop runs
  // bounded slices and polls the transport for Ctrl-C between them.
  RunResult run_slice(u64 max_insns);

  // Software breakpoints: run() stops with kDebugBreak when the PC reaches
  // a breakpointed address, *before* executing it. Insertion and removal
  // invalidate overlapping translation blocks and newly translated blocks
  // are split at breakpoints, so a breakpoint is always a block head and the
  // per-block dispatch check suffices — execution without breakpoints pays
  // nothing per instruction.
  void add_breakpoint(u32 address);
  bool remove_breakpoint(u32 address);
  bool has_breakpoint(u32 address) const noexcept;
  void clear_breakpoints();

  // Data watchpoints over [address, address+length): run()/step() stop with
  // kDebugWatch after an overlapping data access of the matching kind
  // completes (GDB semantics: the write has landed when the stop reports).
  void add_watchpoint(u32 address, u32 length, WatchKind kind);
  bool remove_watchpoint(u32 address, u32 length, WatchKind kind);
  void clear_watchpoints();

  // Ask a running machine to stop with kDebugInterrupt at the next block
  // boundary (the stub's Ctrl-C path; single-threaded — the request is
  // posted between bounded run slices, not from another thread).
  void request_debug_stop() noexcept {
    debug_stop_request_ = true;
    debug_check_ = true;
  }

  // Drop translation blocks overlapping [address, address+size) — required
  // after any out-of-band RAM write (debugger `M` packets patching code).
  void invalidate_code(u32 address, u32 size);

  // Reset architectural state, counters and every mapped device (keeps
  // loaded RAM contents unless `clear_ram`).
  void reset(bool clear_ram = false);

  // --- Snapshot/restore (see vp/snapshot.hpp).

  // Capture complete machine state into `snap` (full RAM copy, paid once)
  // and reset the dirty-page baseline: the next restore_state() copies back
  // only pages written after this call.
  void save_state(Snapshot& snap);

  // Restore the state captured by save_state() on *this* machine. RAM
  // restore is proportional to the pages dirtied since the snapshot, and
  // translation blocks on restored pages are invalidated — the rest of the
  // TB cache stays warm. Plugin callbacks are untouched; campaign drivers
  // that re-attach per-run plugins call clear_plugins() first.
  void restore_state(const Snapshot& snap);

  // Cumulative save/restore cost counters for this machine.
  const SnapshotStats& snapshot_stats() const noexcept { return snap_stats_; }

  // Drop every registered plugin callback (per-run plugin attachment on a
  // long-lived machine). Warm translation blocks survive; their tb_trans
  // events have already fired and are not replayed.
  void clear_plugins() noexcept;

  CpuState& cpu() noexcept { return cpu_; }
  const CpuState& cpu() const noexcept { return cpu_; }

  // --- SMP view. The *active* hart's architectural state is staged in the
  // hot `cpu_` member while it runs (the single-hart fast path is untouched);
  // parked harts live in harts_. cpu(h) resolves to whichever copy is live.
  unsigned num_harts() const noexcept { return num_harts_; }
  unsigned active_hart() const noexcept { return active_hart_; }
  CpuState& cpu(unsigned hart) noexcept {
    return hart == active_hart_ ? cpu_ : harts_[hart].cpu;
  }
  const CpuState& cpu(unsigned hart) const noexcept {
    return hart == active_hart_ ? cpu_ : harts_[hart].cpu;
  }
  // Instructions retired by one hart (the global icount() is the sum).
  u64 hart_icount(unsigned hart) const noexcept {
    u64 count = hart_icount_[hart];
    if (hart == active_hart_) count += icount_ - slice_start_icount_;
    return count;
  }

  Bus& bus() noexcept { return bus_; }
  const MachineConfig& config() const noexcept { return config_; }
  const TimingModel& timing() const noexcept { return timing_; }

  u64 icount() const noexcept { return icount_; }
  u64 cycles() const noexcept { return cycles_; }

  // Counter-CSR view (cycle/instret/time) at the current execution point.
  // icount_ is incremented *before* an instruction executes, so a mid-block
  // CSR read observes the instruction count *including* the current
  // instruction — the single definition used by both the direct CSR-op path
  // and the plugin C API, in the cached and uncached (enable_tb_cache =
  // false) execution modes alike.
  CsrFile::CounterView counter_view() const noexcept {
    return CsrFile::CounterView{cycles_, icount_, cycles_, active_hart_};
  }
  u64 icache_misses() const noexcept { return icache_.misses(); }
  TbCache& tb_cache() noexcept { return tb_cache_; }
  const TbCache& tb_cache() const noexcept { return tb_cache_; }

  // Execution-engine counters (chain links, jump cache, superblocks,
  // dispatch mix); cleared by reset() with the other performance counters.
  // The no-arg form is the active hart's counters (== machine-wide for one
  // hart); the per-hart form resolves staged vs parked copies like cpu(h).
  const EngineStats& engine_stats() const noexcept { return estats_; }
  const EngineStats& engine_stats(unsigned hart) const noexcept {
    return hart == active_hart_ ? estats_ : hart_stats_[hart];
  }

  // Called by the plugin C API after an out-of-band CSR write: a changed
  // interrupt-enable state must end the current chain run so the fast-path
  // gate re-evaluates at the next dispatch.
  void note_csr_written(u16 address) noexcept {
    if (address == isa::kCsrMie || address == isa::kCsrMstatus) {
      chain_epoch_recheck_ = true;
    }
  }

  Uart* uart() noexcept { return uart_; }
  Clint* clint() noexcept { return clint_; }
  Gpio* gpio() noexcept { return gpio_; }

  // Plugin C-API handle for this machine (stable for its lifetime).
  s4e_vm* vm_handle() noexcept;

  // --- Plugin host (called from the C API shims; see plugin_api.cpp).
  template <typename Cb>
  struct Registration {
    Cb callback;
    void* userdata;
  };
  u64 add_tb_trans_cb(s4e_tb_trans_cb cb, void* userdata);
  u64 add_tb_exec_cb(s4e_tb_exec_cb cb, void* userdata);
  u64 add_insn_exec_cb(s4e_insn_exec_cb cb, void* userdata);
  u64 add_mem_cb(s4e_mem_cb cb, void* userdata);
  u64 add_trap_cb(s4e_trap_cb cb, void* userdata);
  u64 add_exit_cb(s4e_exit_cb cb, void* userdata);
  void request_exit(int exit_code) noexcept;

  // Deferred TB-cache flush: safe to call from plugin callbacks while a
  // block is executing (the flush happens at the next block boundary).
  void request_tb_flush() noexcept { tb_flush_pending_ = true; }

 private:
  struct PendingStop {
    StopReason reason;
    int exit_code;
    u32 trap_cause = 0;
    std::string detail;
    u32 debug_addr = 0;
    WatchKind watch_kind = WatchKind::kWrite;
  };

  struct Watchpoint {
    u32 address = 0;
    u32 length = 0;
    WatchKind kind = WatchKind::kWrite;

    bool operator==(const Watchpoint&) const noexcept = default;
  };

  // Shared run loop; `budget_reason` is the stop reason reported when
  // `max_insns` is exhausted (kMaxInstructions for run, kDebugStep for
  // step, kDebugSlice for run_slice). Stepping skips the breakpoint check
  // at the entry PC (resume-over-breakpoint semantics).
  RunResult run_loop(u64 max_insns, StopReason budget_reason);
  TranslationBlock* translate(u32 pc);

  // --- Execution engine (see exec_engine.hpp and the handler table in
  // machine.cpp). Two dispatch modes share the same lowered handlers:
  //   fast:    run_chain() — chained threaded dispatch, epoch work hoisted
  //            to chain exits, bounded by kChainQuantum;
  //   careful: run_block_careful() — exact old per-instruction loop, used
  //            whenever plugins, debug state, an armed timer, or the
  //            uncached ablation demand per-insn/per-block observability.
  enum class BlockExit : u8 { kFall, kTaken, kIndirect, kSide, kStopped };
  bool fast_path_ok() const noexcept;
  void run_chain(u64 limit);
  void run_block_careful(u64 limit);
  BlockExit exec_block_fast(TranslationBlock* tb);
  // Per-insn execution with exact limit/stop/flush boundaries (the careful
  // inner loop; also the fast path's partial-block fallback when the
  // instruction budget ends inside a block).
  void exec_insns_careful(TranslationBlock* tb, u64 limit);
  void lower_block(TranslationBlock& block);
  TranslationBlock* lookup_or_translate(u32 pc);
  // Splice `dst` onto `src`'s hot exit edge; returns the block to continue
  // with, or nullptr when a superblock was installed (epoch bumped — the
  // caller must return to central dispatch).
  TranslationBlock* maybe_form_superblock(TranslationBlock* src, BlockExit ex,
                                          TranslationBlock* dst);
  void refresh_ram_window() noexcept;
  void update_mem_slow() noexcept {
    mem_slow_ = !mem_cbs_.empty() || !watchpoints_.empty();
  }

  // --- SMP slice scheduler (run_loop). sync_active_hart() parks the staged
  // cpu_/estats_ copies back into harts_ / hart_stats_; rotate_hart() parks
  // the current hart and stages the next one for a fresh slice.
  void sync_active_hart();
  void rotate_hart();
  // Invalidate other harts' LR reservations overlapping a store to
  // [address, address+size) — the cross-hart half of SC's success rule.
  void clear_remote_reservations(u32 address, unsigned size) noexcept;

  void check_watchpoints(u32 address, unsigned size, bool is_store);
  void update_debug_check() noexcept {
    debug_check_ = debug_stop_request_ || !breakpoints_.empty();
  }
  void take_trap(u32 cause, u32 tval, bool interrupt);
  void check_interrupts();
  void probe_icache(u32 block_pc);
  void fire_mem_cb(u32 vaddr, u32 value, unsigned size, bool is_store);
  static s4e_insn_info to_insn_info(const isa::Instr& instr, u32 address);
  static s4e_insn_info to_insn_info(const DecodedInsn& decoded);

  // The lowered instruction handlers live in this friend (machine.cpp) so
  // the per-op functions can touch machine state without 60 method
  // declarations here.
  friend struct ExecOps;

  MachineConfig config_;
  TimingModel timing_;
  CpuState cpu_;
  Bus bus_;
  TbCache tb_cache_;
  Uart* uart_ = nullptr;
  Clint* clint_ = nullptr;
  Gpio* gpio_ = nullptr;

  u64 icount_ = 0;
  u64 cycles_ = 0;
  // --- SMP state. One global instruction/cycle timeline; harts take
  // deterministic round-robin slices of it. icache/bimodal state stays
  // machine-global (a shared front-end model), CPU state and engine stats
  // are per hart.
  unsigned num_harts_ = 1;
  bool smp_ = false;  // slice scheduler engaged (num_harts_ > 1 or forced)
  unsigned active_hart_ = 0;
  u64 slice_end_ = 0;           // icount_ at which the active hart yields
  u64 slice_start_icount_ = 0;  // icount_ when its current slice began
  unsigned reservations_active_ = 0;  // harts holding an LR reservation
  std::vector<Hart> harts_;
  std::vector<EngineStats> hart_stats_;
  std::vector<u64> hart_icount_;
  std::optional<PendingStop> pending_stop_;
  u32 current_insn_pc_ = 0;
  bool tb_flush_pending_ = false;
  // Set by a CSR write that may change the fast-path gate (mie/mstatus):
  // ends the current chain run so interrupt arming re-evaluates centrally.
  bool chain_epoch_recheck_ = false;
  // True while loads/stores must take the slow path even for RAM (memory
  // callbacks or watchpoints registered); kept in sync by update_mem_slow().
  bool mem_slow_ = false;
  // Cached view of the primary RAM region for the inline load/store fast
  // path (stable for the machine's lifetime; see Bus::ram_window).
  u8* ram_data_ = nullptr;
  u64* ram_dirty_ = nullptr;
  u32 ram_base_ = 0;
  u32 ram_size_ = 0;
  EngineStats estats_;
  // Debug run-control state. `debug_check_` is the single block-dispatch
  // gate (true iff breakpoints exist or a stop was requested); the
  // watchpoint vector is checked on data accesses only while non-empty.
  bool debug_check_ = false;
  bool debug_stop_request_ = false;
  std::unordered_set<u32> breakpoints_;
  std::vector<Watchpoint> watchpoints_;
  // Microarchitectural model state machines (shared with trace replay —
  // see vp/timing.hpp): direct-mapped icache tags and the bimodal branch
  // predictor table.
  IcacheSim icache_;
  BimodalPredictor bimodal_;
  SnapshotStats snap_stats_;
  // Holds the current block when the TB cache is disabled (E1 ablation).
  std::unique_ptr<TranslationBlock> scratch_block_;

  std::vector<Registration<s4e_tb_trans_cb>> tb_trans_cbs_;
  std::vector<Registration<s4e_tb_exec_cb>> tb_exec_cbs_;
  std::vector<Registration<s4e_insn_exec_cb>> insn_exec_cbs_;
  std::vector<Registration<s4e_mem_cb>> mem_cbs_;
  std::vector<Registration<s4e_trap_cb>> trap_cbs_;
  std::vector<Registration<s4e_exit_cb>> exit_cbs_;

  std::unique_ptr<s4e_vm> vm_handle_;
};

}  // namespace s4e::vp
