# 4x4 integer matrix multiply (identity check)
# expected exit code: 136

_start:
    la s0, mat_a
    la s1, mat_b
    la s2, mat_c
    li s7, 4
    li s3, 0
iloop:
    li s4, 0
jloop:
    li s5, 0
    li t6, 0
kloop:
    slli t0, s3, 4
    slli t1, s5, 2
    add t0, t0, t1
    add t0, t0, s0
    lw t2, 0(t0)
    slli t3, s5, 4
    slli t4, s4, 2
    add t3, t3, t4
    add t3, t3, s1
    lw t5, 0(t3)
    mul t2, t2, t5
    add t6, t6, t2
    addi s5, s5, 1
    blt s5, s7, kloop
    slli t0, s3, 4
    slli t1, s4, 2
    add t0, t0, t1
    add t0, t0, s2
    sw t6, 0(t0)
    addi s4, s4, 1
    blt s4, s7, jloop
    addi s3, s3, 1
    blt s3, s7, iloop
    la t0, mat_c
    li s6, 16
    li a0, 0
csum:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi s6, s6, -1
    bnez s6, csum
    andi a0, a0, 0xff
    li a7, 93
    ecall
.data
mat_a:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
mat_b:
    .word 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1
mat_c:
    .space 64
