// Natural-loop detection and loop-bound analysis.
//
// Bounds come from two channels, exactly as in the aiT flow the QTA paper
// describes: automatic detection of simple counted loops, and user
// `.loopbound` annotations for everything the patterns cannot prove.
#pragma once

#include <optional>
#include <vector>

#include "cfg/cfg.hpp"
#include "cfg/dominators.hpp"

namespace s4e::cfg {

struct Loop {
  BlockId header = kNoBlock;
  std::vector<BlockId> blocks;       // includes the header
  std::vector<BlockId> back_sources; // sources of back edges into the header
  std::optional<u32> bound;          // max iterations per entry from outside
  int parent = -1;                   // index of the innermost enclosing loop
  u32 depth = 1;                     // nesting depth (1 = outermost)

  bool contains(BlockId block) const {
    for (BlockId b : blocks) {
      if (b == block) return true;
    }
    return false;
  }
};

struct LoopForest {
  std::vector<Loop> loops;  // sorted innermost-first (deepest depth first)

  // Index of the innermost loop headed by `header`, or -1.
  int loop_with_header(BlockId header) const {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (loops[i].header == header) return static_cast<int>(i);
    }
    return -1;
  }
};

// Find natural loops (back edge = edge whose target dominates its source),
// merge loops sharing a header, establish nesting, and resolve bounds:
//   1. `.loopbound` annotations whose address falls inside the header block;
//   2. the counted-loop patterns (see detect_counted_loop_bound);
// Loops that end up without a bound keep bound == nullopt; the WCET analyzer
// reports them as an error (aiT would likewise demand an annotation).
Result<LoopForest> find_loops(const Function& fn, const Dominators& dom,
                              const std::vector<assembler::LoopBound>& bounds);

// Pattern analysis for simple counted loops. Recognizes, within `loop`:
//   - decrement-to-zero: a single in-loop `addi r, r, -c` with the back
//     edge guarded by `bne r, x0` / `bgt r, x0` / `bgez`-style tests, where
//     `r` is set by `li r, N` (lui+addi or addi) in a block dominating the
//     header and not inside the loop  ->  bound = ceil(N / c);
//   - increment-to-limit: `addi r, r, c` with back edge `blt r, rl` where
//     `rl` is similarly a dominating constant L and r starts at constant S
//     ->  bound = ceil((L - S) / c).
// Returns nullopt when the pattern does not apply (annotation needed).
std::optional<u32> detect_counted_loop_bound(const Function& fn,
                                             const Dominators& dom,
                                             const Loop& loop);

}  // namespace s4e::cfg
