file(REMOVE_RECURSE
  "CMakeFiles/s4e_memwatch.dir/memwatch.cpp.o"
  "CMakeFiles/s4e_memwatch.dir/memwatch.cpp.o.d"
  "libs4e_memwatch.a"
  "libs4e_memwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_memwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
