# word-table checksum (quickstart kernel)
# expected exit code: 136

_start:
    la t0, data
    li t1, 16
    li a0, 0
sum_loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, sum_loop
    li a7, 93
    ecall
.data
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
