file(REMOVE_RECURSE
  "libs4e_testgen.a"
)
