// E9 — RV32C code-size reduction.
//
// The classic C-extension result (and the motivation for the BMI/ISA-
// extension work in the same group): compressed encodings shrink .text by
// roughly 20–30 % on real code without changing behaviour, and the smaller
// footprint also reduces instruction-cache misses. Both effects are
// measured here on the standard workloads and on generated programs.
#include <cstdio>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "core/workloads.hpp"
#include "testgen/testgen.hpp"
#include "vp/machine.hpp"

namespace {

using namespace s4e;

struct SizeRow {
  std::string name;
  std::size_t plain = 0;
  std::size_t rvc = 0;
  u64 plain_misses = 0;
  u64 rvc_misses = 0;
  bool behaviour_identical = false;
};

SizeRow measure(const std::string& name, const std::string& source) {
  SizeRow row;
  row.name = name;
  assembler::Options plain_options;
  assembler::Options rvc_options;
  rvc_options.compress = true;
  auto plain = assembler::assemble(source, plain_options);
  auto rvc = assembler::assemble(source, rvc_options);
  S4E_CHECK(plain.ok() && rvc.ok());
  row.plain = plain->find_section(".text")->bytes.size();
  row.rvc = rvc->find_section(".text")->bytes.size();

  // Run both with a small icache to expose the footprint effect.
  auto run = [&](const assembler::Program& program, u64* misses) {
    vp::MachineConfig config;
    config.timing.icache_miss_cycles = 10;
    config.timing.icache_lines = 4;
    config.timing.icache_line_bytes = 16;
    vp::Machine machine(config);
    S4E_CHECK(machine.load_program(program).ok());
    auto result = machine.run();
    *misses = machine.icache_misses();
    return result;
  };
  u64 plain_misses = 0, rvc_misses = 0;
  auto plain_result = run(*plain, &plain_misses);
  auto rvc_result = run(*rvc, &rvc_misses);
  row.plain_misses = plain_misses;
  row.rvc_misses = rvc_misses;
  row.behaviour_identical =
      plain_result.exit_code == rvc_result.exit_code &&
      plain_result.instructions == rvc_result.instructions;
  return row;
}

}  // namespace

int main() {
  std::printf("[E9] RV32C code-size reduction (compressed vs base encodings)"
              "\n\n");
  std::printf("%-14s %8s %8s %8s   %10s %10s  %s\n", "program", "base-B",
              "rvc-B", "saving", "i$miss", "i$miss-rvc", "behaviour");
  std::printf("%s\n", std::string(80, '-').c_str());

  double total_plain = 0, total_rvc = 0;
  bool all_identical = true;
  for (const core::Workload& workload : core::standard_workloads()) {
    SizeRow row = measure(workload.name, workload.source);
    total_plain += static_cast<double>(row.plain);
    total_rvc += static_cast<double>(row.rvc);
    all_identical = all_identical && row.behaviour_identical;
    std::printf("%-14s %8zu %8zu %7.1f%%   %10llu %10llu  %s\n",
                row.name.c_str(), row.plain, row.rvc,
                100.0 * (1.0 - static_cast<double>(row.rvc) /
                                   static_cast<double>(row.plain)),
                static_cast<unsigned long long>(row.plain_misses),
                static_cast<unsigned long long>(row.rvc_misses),
                row.behaviour_identical ? "identical" : "DIFFERS");
  }

  const double workload_plain = total_plain;
  const double workload_rvc = total_rvc;

  // Generated (torture) programs: denser ALU mix, different ratio. CSR
  // reads are disabled: `csrr mcycle` makes behaviour timing-dependent,
  // which would (correctly) differ once the icache model reacts to the
  // smaller footprint.
  testgen::TortureConfig config;
  config.seed = 99;
  config.programs = 4;
  config.use_csr = false;
  for (const auto& test : testgen::torture_suite(config)) {
    SizeRow row = measure(test.name, test.source);
    total_plain += static_cast<double>(row.plain);
    total_rvc += static_cast<double>(row.rvc);
    all_identical = all_identical && row.behaviour_identical;
    std::printf("%-14s %8zu %8zu %7.1f%%   %10llu %10llu  %s\n",
                row.name.c_str(), row.plain, row.rvc,
                100.0 * (1.0 - static_cast<double>(row.rvc) /
                                   static_cast<double>(row.plain)),
                static_cast<unsigned long long>(row.plain_misses),
                static_cast<unsigned long long>(row.rvc_misses),
                row.behaviour_identical ? "identical" : "DIFFERS");
  }

  // ABI-flavoured generated programs: compiler-like register allocation
  // (x8..x15, two-address forms) — the profile RVC was designed for.
  testgen::TortureConfig abi_config = config;
  abi_config.abi_style = true;
  abi_config.seed = 123;
  double abi_plain = 0, abi_rvc = 0;
  for (const auto& test : testgen::torture_suite(abi_config)) {
    SizeRow row = measure("abi_" + test.name, test.source);
    abi_plain += static_cast<double>(row.plain);
    abi_rvc += static_cast<double>(row.rvc);
    all_identical = all_identical && row.behaviour_identical;
    std::printf("%-14s %8zu %8zu %7.1f%%   %10llu %10llu  %s\n",
                ("abi_" + test.name).c_str(), row.plain, row.rvc,
                100.0 * (1.0 - static_cast<double>(row.rvc) /
                                   static_cast<double>(row.plain)),
                static_cast<unsigned long long>(row.plain_misses),
                static_cast<unsigned long long>(row.rvc_misses),
                row.behaviour_identical ? "identical" : "DIFFERS");
  }

  std::printf("%s\n", std::string(80, '-').c_str());
  std::printf("ABI-flavoured reduction  : %.1f%%  (compiler-like register "
              "profile)\n",
              100.0 * (1.0 - abi_rvc / abi_plain));
  std::printf("workload .text reduction : %.1f%%\n",
              100.0 * (1.0 - workload_rvc / workload_plain));
  std::printf("aggregate .text reduction: %.1f%%  (hand-written assembly; "
              "compiler output with its\n",
              100.0 * (1.0 - total_rvc / total_plain));
  std::printf("  sp-relative addressing and x8-x15 allocation reaches the "
              "classic 20-30%%)\n");
  std::printf("behaviour identical everywhere: %s\n",
              all_identical ? "YES" : "NO");
  return all_identical ? 0 : 1;
}
