#include "vp/devices/gpio.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

Result<u32> Gpio::read(u32 offset, unsigned size) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "gpio: only 32-bit access");
  }
  switch (offset) {
    case kOut: return out_;
    case kIn: return in_;
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("gpio: read from bad offset 0x%x", offset));
  }
}

Status Gpio::write(u32 offset, unsigned size, u32 value) {
  if (size != 4) {
    return Error(ErrorCode::kInvalidArgument, "gpio: only 32-bit access");
  }
  switch (offset) {
    case kOut: record(value); return Status();
    case kSet: record(out_ | value); return Status();
    case kClear: record(out_ & ~value); return Status();
    case kToggle: record(out_ ^ value); return Status();
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("gpio: write to bad offset 0x%x", offset));
  }
}

void Gpio::reset() {
  out_ = 0;
  now_ = 0;
  changes_.clear();
}

void Gpio::save_state(StateWriter& out) const {
  out.put_u32(out_);
  out.put_u32(in_);
  out.put_u64(now_);
  out.put_u64(changes_.size());
  for (const Change& change : changes_) {
    out.put_u64(change.cycle);
    out.put_u32(change.out);
  }
}

void Gpio::restore_state(StateReader& in) {
  out_ = in.get_u32();
  in_ = in.get_u32();
  now_ = in.get_u64();
  changes_.clear();
  for (u64 i = in.get_u64(); i > 0; --i) {
    Change change;
    change.cycle = in.get_u64();
    change.out = in.get_u32();
    changes_.push_back(change);
  }
}

void Gpio::record(u32 new_out) {
  if (new_out == out_) return;
  out_ = new_out;
  changes_.push_back(Change{now_, out_});
}

double Gpio::duty_cycle(unsigned pin) const {
  if (changes_.size() < 2) return 0.0;
  const u32 mask = u32{1} << pin;
  u64 high = 0;
  u64 total = 0;
  // Level between change[i] and change[i+1] is change[i].out.
  for (std::size_t i = 0; i + 1 < changes_.size(); ++i) {
    const u64 span = changes_[i + 1].cycle - changes_[i].cycle;
    total += span;
    if ((changes_[i].out & mask) != 0) high += span;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(high) / static_cast<double>(total);
}

}  // namespace s4e::vp
