// Shared campaign-runner plumbing: the golden-run setup and final-state
// hashing that fault-effect analysis and binary mutation both need, plus
// the per-worker reusable VM (snapshot once, restore per mutant) that both
// campaign engines drive through CampaignExecutor::run_affine().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "common/status.hpp"
#include "vp/machine.hpp"
#include "vp/snapshot.hpp"

namespace s4e::vp {

// FNV-1a over the program's final .data contents in `machine`'s RAM — the
// deep-state comparison surface of the campaign engines. 0 when the program
// has no .data section (or it is unreadable).
u64 data_memory_hash(Machine& machine, const assembler::Program& program);

// Instruction budget for one mutant run: `golden_instructions * factor`
// plus a fixed slack for short goldens, computed with saturating arithmetic
// (a long golden run times a large factor must not wrap to a tiny — or
// zero — budget that disables or corrupts the hang detector), and clamped
// to the machine config's own `max_instructions` cap.
u64 hang_budget(u64 golden_instructions, u64 factor, u64 max_instructions)
    noexcept;

// Golden (fault-free) reference execution of a program.
struct GoldenRun {
  RunResult result;
  std::string uart;
  u64 memory_hash = 0;              // FNV-1a over the final .data contents
  std::vector<u32> executed_code;   // instruction addresses executed (sorted)
  std::vector<u32> touched_memory;  // data addresses accessed (sorted)
};

// Load `program` into `machine`, run it to completion and collect the
// golden reference. The machine is constructed by the caller so extra
// plugins (coverage) can be attached before the run. Fails unless the run
// terminates normally.
Result<GoldenRun> run_golden(Machine& machine,
                             const assembler::Program& program);

// One worker's long-lived VM for a mutant campaign: the machine is built
// and loaded once, a baseline Snapshot is captured, and every subsequent
// prepare() hands back a machine restored to the loaded state — dirty
// pages only, TB cache warm, previous run's plugins dropped.
class WorkerVm {
 public:
  static Result<std::unique_ptr<WorkerVm>> create(
      const MachineConfig& config, const assembler::Program& program);

  // Baseline machine for the next mutant run.
  Machine& prepare();

  Machine& machine() noexcept { return machine_; }
  const SnapshotStats& stats() const noexcept {
    return machine_.snapshot_stats();
  }

 private:
  explicit WorkerVm(const MachineConfig& config) : machine_(config) {}

  Machine machine_;
  Snapshot baseline_;
};

}  // namespace s4e::vp
