# Empty compiler generated dependencies file for s4e_testgen.
# This may be replaced when dependencies are built.
