file(REMOVE_RECURSE
  "libs4e_memwatch.a"
)
