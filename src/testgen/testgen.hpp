// Random / directed RISC-V test-program generation — the ecosystem's
// stand-in for the three openly available suites the coverage paper
// (MBMV'21) measures:
//   - an architectural-test-style suite: one small directed test per
//     instruction type, checking a golden result;
//   - a unit-test-style suite: themed kernels per instruction class;
//   - a Torture-style suite: seeded random instruction soup with a bounded
//     loop skeleton, guaranteed to terminate.
// All generators emit assembler source (consumed by s4e::assembler), so
// every generated program goes through the same binary pipeline as
// hand-written workloads.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "isa/opcode.hpp"

namespace s4e::testgen {

struct GeneratedProgram {
  std::string name;
  std::string source;  // assembler input
};

// --- Architectural-style suite: directed single-instruction tests.
// Every test initializes operands, executes the instruction under test and
// exits with code 0 on the expected result (self-checking). Instructions
// without a natural self-check (fence, wfi, mret) are exercised for
// execution only.
std::vector<GeneratedProgram> architectural_suite();

// --- Unit-style suite: one kernel per behavioural class (ALU chains,
// load/store patterns, branch ladders, M-extension math, CSR access).
std::vector<GeneratedProgram> unit_suite();

// --- Torture-style random programs.
struct TortureConfig {
  u64 seed = 1;
  unsigned programs = 10;
  unsigned segments = 24;        // random instruction segments per program
  unsigned segment_length = 8;   // instructions per segment
  bool use_memory = true;        // loads/stores into a scratch buffer
  bool use_mul_div = true;
  bool use_branches = true;      // forward-only branch ladders
  bool use_csr = true;
  // ABI-flavoured generation: prefer x8..x15 and two-address forms (the
  // register profile of compiler output), which is what makes RVC pay off.
  bool abi_style = false;
};
std::vector<GeneratedProgram> torture_suite(const TortureConfig& config);

}  // namespace s4e::testgen
