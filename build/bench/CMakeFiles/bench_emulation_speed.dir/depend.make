# Empty dependencies file for bench_emulation_speed.
# This may be replaced when dependencies are built.
