#include <gtest/gtest.h>

#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

namespace s4e::qta {
namespace {

using core::Ecosystem;

Ecosystem::QtaOutcome qta_ok(const std::string& source,
                             const std::string& name = "test") {
  Ecosystem ecosystem;
  auto program = ecosystem.build_source(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  auto outcome = ecosystem.run_qta(*program, name);
  EXPECT_TRUE(outcome.ok()) << (outcome.ok() ? "" : outcome.error().to_string());
  return *outcome;
}

TEST(Qta, ThreeTimelineOrdering) {
  auto outcome = qta_ok(R"(
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  const QtaReport& report = outcome.report;
  EXPECT_GT(report.observed_cycles, 0u);
  EXPECT_GE(report.wc_path_cycles, report.observed_cycles);
  EXPECT_GE(report.static_bound, report.wc_path_cycles);
  EXPECT_FALSE(report.bound_violated);
  EXPECT_EQ(report.unknown_blocks, 0u);
}

TEST(Qta, LightPathLeavesSlackToBound) {
  // Runtime takes the light arm; the static bound covers the heavy arm, so
  // bound/path pessimism must be > 1.
  auto outcome = qta_ok(R"(
    li a0, 0
    beqz a0, light
heavy:
    div t0, t1, t2
    div t0, t1, t2
    div t0, t1, t2
    div t0, t1, t2
    j end
light:
    addi t0, t0, 1
end:
    li a7, 93
    li a0, 0
    ecall
  )");
  EXPECT_GT(outcome.report.bound_over_path(), 1.2);
  EXPECT_GE(outcome.report.wc_path_cycles, outcome.report.observed_cycles);
}

TEST(Qta, TightLoopPathMatchesBoundShape) {
  // A loop that executes exactly its bound leaves little static slack
  // (everything on the path is the worst case except memory pessimism —
  // absent here since there are no loads).
  auto outcome = qta_ok(R"(
    li t0, 50
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  // WC path and static bound should be close for this shape (within 20%).
  EXPECT_LE(outcome.report.bound_over_path(), 1.2);
}

TEST(Qta, BlocksEnteredCountsLoopIterations) {
  auto outcome = qta_ok(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  // Entry block + 10 loop entries + exit block.
  EXPECT_GE(outcome.report.blocks_entered, 12u);
}

TEST(Qta, InterproceduralPathAccumulates) {
  auto outcome = qta_ok(R"(
_start:
    call helper
    call helper
    li a7, 93
    li a0, 0
    ecall
helper:
    li t0, 20
hloop:
    addi t0, t0, -1
    bnez t0, hloop
    ret
  )");
  EXPECT_GE(outcome.report.wc_path_cycles, outcome.report.observed_cycles);
  EXPECT_GE(outcome.report.static_bound, outcome.report.wc_path_cycles);
  EXPECT_FALSE(outcome.report.bound_violated);
}

TEST(Qta, ReportRendersAllLines) {
  auto outcome = qta_ok(R"(
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  const std::string text = outcome.report.to_string();
  EXPECT_NE(text.find("observed cycles"), std::string::npos);
  EXPECT_NE(text.find("WC time"), std::string::npos);
  EXPECT_NE(text.find("static WCET bound"), std::string::npos);
  EXPECT_EQ(text.find("VIOLATED"), std::string::npos);
}

TEST(Qta, ResetClearsAccumulation) {
  core::Ecosystem ecosystem;
  auto program = ecosystem.build_source(R"(
    li t0, 5
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
  )");
  ASSERT_TRUE(program.ok());
  auto analysis = ecosystem.analyze_wcet(*program);
  ASSERT_TRUE(analysis.ok());
  QtaPlugin plugin(analysis->annotated);
  vp::Machine machine;
  ASSERT_TRUE(machine.load_program(*program).ok());
  plugin.attach(machine.vm_handle());
  machine.run();
  EXPECT_GT(plugin.wc_path_cycles(), 0u);
  plugin.reset();
  EXPECT_EQ(plugin.wc_path_cycles(), 0u);
  EXPECT_EQ(plugin.blocks_entered(), 0u);
}

// Property: the three-timeline chain holds for every analyzable workload.
class QtaWorkload : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QtaWorkload, ChainHolds) {
  const core::Workload& workload = core::standard_workloads()[GetParam()];
  if (!workload.wcet_analyzable) GTEST_SKIP();
  core::Ecosystem ecosystem;
  auto program = ecosystem.build_source(workload.source);
  ASSERT_TRUE(program.ok());
  auto outcome = ecosystem.run_qta(*program, workload.name);
  ASSERT_TRUE(outcome.ok()) << workload.name << ": "
                            << outcome.error().to_string();
  const QtaReport& report = outcome->report;
  EXPECT_GE(report.wc_path_cycles, report.observed_cycles) << workload.name;
  EXPECT_GE(report.static_bound, report.wc_path_cycles) << workload.name;
  EXPECT_FALSE(report.bound_violated) << workload.name;
  EXPECT_EQ(report.unknown_blocks, 0u) << workload.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, QtaWorkload,
    ::testing::Range<std::size_t>(0, core::standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return core::standard_workloads()[info.param].name;
    });

}  // namespace
}  // namespace s4e::qta
