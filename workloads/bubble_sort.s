# bubble sort of 8 words with sortedness self-check
# expected exit code: 0

_start:
    li s2, 7
outer:
    la t1, array
    li t0, 0
inner:
    .loopbound 7
    lw t2, 0(t1)
    lw t3, 4(t1)
    ble t2, t3, noswap
    sw t3, 0(t1)
    sw t2, 4(t1)
noswap:
    addi t1, t1, 4
    addi t0, t0, 1
    blt t0, s2, inner
    addi s2, s2, -1
    bnez s2, outer
    la t1, array
    li s3, 7
check:
    lw t2, 0(t1)
    lw t3, 4(t1)
    bgt t2, t3, bad
    addi t1, t1, 4
    addi s3, s3, -1
    bnez s3, check
    li a0, 0
    li a7, 93
    ecall
bad:
    li a0, 1
    li a7, 93
    ecall
.data
array:
    .word 5, 2, 9, 1, 7, 3, 8, 4
