#include "asm/program.hpp"

#include "common/strings.hpp"

namespace s4e::assembler {

Result<u32> Program::read_word(u32 address) const {
  for (const auto& section : sections) {
    if (address >= section.base && address + 4 <= section.end()) {
      const std::size_t offset = address - section.base;
      u32 word = 0;
      for (unsigned i = 0; i < 4; ++i) {
        word |= static_cast<u32>(section.bytes[offset + i]) << (8 * i);
      }
      return word;
    }
  }
  return Error(ErrorCode::kOutOfRange,
               format("address 0x%08x not covered by any section", address));
}

Result<u32> Program::read_half(u32 address) const {
  for (const auto& section : sections) {
    if (address >= section.base && address + 2 <= section.end()) {
      const std::size_t offset = address - section.base;
      return static_cast<u32>(section.bytes[offset]) |
             (static_cast<u32>(section.bytes[offset + 1]) << 8);
    }
  }
  return Error(ErrorCode::kOutOfRange,
               format("address 0x%08x not covered by any section", address));
}

}  // namespace s4e::assembler
