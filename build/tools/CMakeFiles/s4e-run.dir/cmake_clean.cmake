file(REMOVE_RECURSE
  "CMakeFiles/s4e-run.dir/s4e_run.cpp.o"
  "CMakeFiles/s4e-run.dir/s4e_run.cpp.o.d"
  "s4e-run"
  "s4e-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
