file(REMOVE_RECURSE
  "CMakeFiles/test_qta.dir/test_qta.cpp.o"
  "CMakeFiles/test_qta.dir/test_qta.cpp.o.d"
  "test_qta"
  "test_qta.pdb"
  "test_qta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
