// Instr -> binary encoding; the inverse of the decoder, derived from the
// same OpInfo table. The assembler and the test generator emit through this.
#pragma once

#include "common/status.hpp"
#include "isa/instr.hpp"

namespace s4e::isa {

// Encode a decoded instruction back into its 32-bit word. Validates operand
// ranges (register indices, immediate widths, branch alignment) and fails
// with kEncodingError on violations.
Result<u32> encode(const Instr& instr);

// Convenience builders used by the assembler, the test generator and tests.
Instr make_r(Op op, unsigned rd, unsigned rs1, unsigned rs2);
Instr make_i(Op op, unsigned rd, unsigned rs1, i32 imm);
Instr make_shift(Op op, unsigned rd, unsigned rs1, unsigned shamt);
Instr make_s(Op op, unsigned rs1, unsigned rs2, i32 imm);
Instr make_b(Op op, unsigned rs1, unsigned rs2, i32 offset);
Instr make_u(Op op, unsigned rd, i32 imm_upper20);  // imm is the <<12 value
Instr make_j(Op op, unsigned rd, i32 offset);
Instr make_csr_reg(Op op, unsigned rd, u16 csr, unsigned rs1);
Instr make_csr_imm(Op op, unsigned rd, u16 csr, unsigned zimm);
Instr make_system(Op op);

}  // namespace s4e::isa
