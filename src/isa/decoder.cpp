#include "isa/decoder.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace s4e::isa {

namespace {

// Immediate extraction per the RISC-V base encoding.
i32 imm_i(u32 w) { return sign_extend(extract_bits(w, 20, 12), 12); }

i32 imm_s(u32 w) {
  const u32 value = (extract_bits(w, 25, 7) << 5) | extract_bits(w, 7, 5);
  return sign_extend(value, 12);
}

i32 imm_b(u32 w) {
  const u32 value = (extract_bits(w, 31, 1) << 12) |
                    (extract_bits(w, 7, 1) << 11) |
                    (extract_bits(w, 25, 6) << 5) |
                    (extract_bits(w, 8, 4) << 1);
  return sign_extend(value, 13);
}

i32 imm_u(u32 w) { return static_cast<i32>(w & 0xfffff000u); }

i32 imm_j(u32 w) {
  const u32 value = (extract_bits(w, 31, 1) << 20) |
                    (extract_bits(w, 12, 8) << 12) |
                    (extract_bits(w, 20, 1) << 11) |
                    (extract_bits(w, 21, 10) << 1);
  return sign_extend(value, 21);
}

}  // namespace

Instr extract_operands(Op op, u32 word) noexcept {
  Instr instr;
  instr.op = op;
  instr.raw = word;
  const u8 rd = static_cast<u8>(extract_bits(word, 7, 5));
  const u8 rs1 = static_cast<u8>(extract_bits(word, 15, 5));
  const u8 rs2 = static_cast<u8>(extract_bits(word, 20, 5));
  switch (op_info(op).format) {
    case Format::kR:
      instr.rd = rd;
      instr.rs1 = rs1;
      instr.rs2 = rs2;
      break;
    case Format::kI:
      instr.rd = rd;
      instr.rs1 = rs1;
      instr.imm = imm_i(word);
      break;
    case Format::kIShift:
      instr.rd = rd;
      instr.rs1 = rs1;
      instr.rs2 = rs2;  // shamt
      instr.imm = static_cast<i32>(rs2);
      break;
    case Format::kS:
      instr.rs1 = rs1;
      instr.rs2 = rs2;
      instr.imm = imm_s(word);
      break;
    case Format::kB:
      instr.rs1 = rs1;
      instr.rs2 = rs2;
      instr.imm = imm_b(word);
      break;
    case Format::kU:
      instr.rd = rd;
      instr.imm = imm_u(word);
      break;
    case Format::kJ:
      instr.rd = rd;
      instr.imm = imm_j(word);
      break;
    case Format::kCsrReg:
      instr.rd = rd;
      instr.rs1 = rs1;
      instr.csr = static_cast<u16>(extract_bits(word, 20, 12));
      break;
    case Format::kCsrImm:
      instr.rd = rd;
      instr.rs2 = rs1;  // zimm lives in the rs1 field
      instr.imm = static_cast<i32>(rs1);
      instr.csr = static_cast<u16>(extract_bits(word, 20, 12));
      break;
    case Format::kNone:
    case Format::kFence:
      break;
  }
  return instr;
}

Decoder::Decoder() {
  for (unsigned i = 0; i < kOpCount; ++i) {
    const OpInfo& info = op_table()[i];
    const unsigned major = (info.match >> 2) & 0x1f;
    buckets_[major].push_back(Row{info.match, info.mask, info.op});
  }
  // Fully-fixed encodings (ecall/ebreak/mret/wfi) must win over the CSR
  // rows that share funct3 = 0 space; order rows most-specific first.
  for (auto& bucket : buckets_) {
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const Row& a, const Row& b) {
                       return popcount32(a.mask) > popcount32(b.mask);
                     });
  }
}

bool Decoder::try_decode(u32 word, Instr& out) const noexcept {
  if ((word & 0x3) != 0x3) return false;  // RVC not supported
  const unsigned major = (word >> 2) & 0x1f;
  for (const Row& row : buckets_[major]) {
    if ((word & row.mask) == row.match) {
      out = extract_operands(row.op, word);
      return true;
    }
  }
  return false;
}

Result<Instr> Decoder::decode(u32 word) const {
  Instr instr;
  if (!try_decode(word, instr)) {
    return Error(ErrorCode::kEncodingError,
                 format("illegal or unsupported encoding 0x%08x", word));
  }
  return instr;
}

const Decoder& decoder() {
  static const Decoder instance;
  return instance;
}

}  // namespace s4e::isa
