#include "cfg/dominators.hpp"

#include <algorithm>

namespace s4e::cfg {

namespace {

// Post-order DFS from the entry.
void post_order(const Function& fn, BlockId block, std::vector<bool>& visited,
                std::vector<BlockId>& order) {
  visited[block] = true;
  for (const Edge& edge : fn.blocks[block].successors) {
    if (!visited[edge.target]) post_order(fn, edge.target, visited, order);
  }
  order.push_back(block);
}

}  // namespace

Dominators::Dominators(const Function& fn) {
  const std::size_t n = fn.blocks.size();
  idom_.assign(n, kNoBlock);
  rpo_index_.assign(n, ~u32{0});

  std::vector<bool> visited(n, false);
  std::vector<BlockId> order;
  order.reserve(n);
  post_order(fn, 0, visited, order);
  rpo_.assign(order.rbegin(), order.rend());
  for (u32 i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;

  // Cooper–Harvey–Kennedy iterative algorithm.
  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index_[a] > rpo_index_[b]) a = idom_[a];
      while (rpo_index_[b] > rpo_index_[a]) b = idom_[b];
    }
    return a;
  };

  idom_[0] = 0;  // entry's idom is itself during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId block : rpo_) {
      if (block == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId pred : fn.blocks[block].predecessors) {
        if (rpo_index_[pred] == ~u32{0}) continue;  // unreachable pred
        if (idom_[pred] == kNoBlock) continue;      // not yet processed
        new_idom = (new_idom == kNoBlock) ? pred : intersect(pred, new_idom);
      }
      if (new_idom != kNoBlock && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }
  idom_[0] = kNoBlock;  // by convention the entry has no idom
}

bool Dominators::dominates(BlockId a, BlockId b) const {
  BlockId walk = b;
  while (true) {
    if (walk == a) return true;
    if (walk == kNoBlock) return false;  // reached above the entry
    walk = idom_[walk];
  }
}

}  // namespace s4e::cfg
