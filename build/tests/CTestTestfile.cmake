# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_elf[1]_include.cmake")
include("/root/repo/build/tests/test_vp[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_wcet[1]_include.cmake")
include("/root/repo/build/tests/test_qta[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_memwatch[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_timing_ext[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_rvc[1]_include.cmake")
include("/root/repo/build/tests/test_bus_devices[1]_include.cmake")
include("/root/repo/build/tests/test_mutation[1]_include.cmake")
include("/root/repo/build/tests/test_workload_files[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
