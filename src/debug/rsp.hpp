// GDB Remote Serial Protocol packet codec: `$payload#xx` framing with
// checksum, 0x7d escaping, optional run-length encoding of replies, and the
// out-of-band bytes ('+' ack, '-' nak, 0x03 interrupt). Pure byte-level
// layer — no sockets, no machine knowledge — so the engine and its tests
// can drive it from any transport.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/bits.hpp"

namespace s4e::debug {

// Two-hex-digit modulo-256 checksum of a packet payload.
std::string rsp_checksum(std::string_view payload);

// Frame `payload` as `$<escaped>#<checksum>`. Characters that collide with
// the framing ('$', '#', '}', '*') are escaped as 0x7d followed by the
// character xor 0x20; the checksum covers the escaped body (wire bytes).
std::string rsp_frame(std::string_view payload);

// Run-length-encode a payload per the RSP rules (`X*n` = X repeated
// (n - 28) more times; count characters are printable and never '#', '$',
// '+' or '-'), then frame it. Long all-zero register dumps shrink ~4x.
std::string rsp_frame_rle(std::string_view payload);

// RLE-expand a payload (the inverse of the encoder; test client helper).
std::string rsp_rle_expand(std::string_view payload);

// Incremental packet decoder: feed raw transport bytes, poll events.
class PacketDecoder {
 public:
  enum class EventKind : u8 {
    kPacket,     // complete well-checksummed packet; `payload` is unescaped
    kAck,        // '+'
    kNak,        // '-'
    kInterrupt,  // 0x03 (Ctrl-C)
    kBadPacket,  // framing or checksum error (receiver should nak)
  };

  struct Event {
    EventKind kind;
    std::string payload;  // kPacket only
  };

  void feed(std::string_view bytes);

  // True if a complete event is queued.
  bool has_event() const noexcept { return !events_.empty(); }
  Event next_event();

 private:
  enum class State : u8 { kIdle, kBody, kChecksum };

  void finish_packet();

  State state_ = State::kIdle;
  std::string body_;      // escaped wire body of the packet being received
  std::string checksum_;  // the two checksum characters
  std::vector<Event> events_;
  std::size_t next_ = 0;
};

}  // namespace s4e::debug
