# Empty dependencies file for test_rvc.
# This may be replaced when dependencies are built.
