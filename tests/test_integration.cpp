// End-to-end pipeline tests: workload source -> assembler -> ELF -> loader
// -> VP -> plugins, all through the public Ecosystem API.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/ecosystem.hpp"
#include "core/workloads.hpp"
#include "elf/elf32.hpp"

namespace s4e::core {
namespace {

// Every standard workload must run to its golden exit code.
class WorkloadRuns : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadRuns, GoldenExitCode) {
  const Workload& workload = standard_workloads()[GetParam()];
  Ecosystem ecosystem;
  auto program = ecosystem.build(workload);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  auto run = ecosystem.run(*program);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result.normal_exit())
      << workload.name << ": " << run->result.detail;
  EXPECT_EQ(run->result.exit_code, workload.expected_exit) << workload.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRuns,
    ::testing::Range<std::size_t>(0, standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return standard_workloads()[info.param].name;
    });

// The same workload must behave identically when round-tripped through an
// on-disk ELF file (the toolchain artefact boundary).
class WorkloadElfRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadElfRoundTrip, SameBehaviour) {
  const Workload& workload = standard_workloads()[GetParam()];
  Ecosystem ecosystem;
  auto program = ecosystem.build(workload);
  ASSERT_TRUE(program.ok());

  const std::string path =
      ::testing::TempDir() + "/s4e_" + workload.name + ".elf";
  ASSERT_TRUE(elf::write_elf_file(*program, path).ok());
  auto loaded = elf::read_elf_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();

  auto direct = ecosystem.run(*program);
  auto via_elf = ecosystem.run(*loaded);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_elf.ok());
  EXPECT_EQ(via_elf->result.exit_code, direct->result.exit_code);
  EXPECT_EQ(via_elf->result.instructions, direct->result.instructions);
  EXPECT_EQ(via_elf->result.cycles, direct->result.cycles);
  EXPECT_EQ(via_elf->uart_output, direct->uart_output);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadElfRoundTrip,
    ::testing::Range<std::size_t>(0, standard_workloads().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return standard_workloads()[info.param].name;
    });

TEST(Ecosystem, LockOpensWithCorrectPin) {
  Ecosystem ecosystem;
  auto workload = find_workload("lock_ctrl");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  auto run = ecosystem.run(*program, "1234");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result.exit_code, 0);
  EXPECT_EQ(run->uart_output, "OPEN\n");
}

TEST(Ecosystem, LockDeniesWrongPin) {
  Ecosystem ecosystem;
  auto workload = find_workload("lock_ctrl");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  auto run = ecosystem.run(*program, "1235");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->result.exit_code, 1);
  EXPECT_EQ(run->uart_output, "DENY\n");
}

TEST(Ecosystem, FindWorkloadErrors) {
  EXPECT_TRUE(find_workload("checksum").ok());
  EXPECT_FALSE(find_workload("does-not-exist").ok());
}

TEST(Ecosystem, WcetAnalysisOnWorkload) {
  Ecosystem ecosystem;
  auto workload = find_workload("matmul");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  auto analysis = ecosystem.analyze_wcet(*program, "matmul");
  ASSERT_TRUE(analysis.ok()) << analysis.error().to_string();
  EXPECT_GT(analysis->total_wcet, 0u);
  // matmul: three nested counted loops + checksum loop.
  EXPECT_GE(analysis->functions[0].loop_count, 4u);
  EXPECT_EQ(analysis->functions[0].loop_count,
            analysis->functions[0].bounded_loops);
}

TEST(Ecosystem, QtaEndToEndOnFir) {
  Ecosystem ecosystem;
  auto workload = find_workload("fir");
  ASSERT_TRUE(workload.ok());
  auto program = ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());
  auto outcome = ecosystem.run_qta(*program, "fir");
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome->run.result.exit_code, workload->expected_exit);
  EXPECT_GE(outcome->report.wc_path_cycles, outcome->report.observed_cycles);
  EXPECT_GE(outcome->report.static_bound, outcome->report.wc_path_cycles);
}

TEST(Ecosystem, CustomTimingParamsPropagate) {
  vp::MachineConfig slow;
  slow.timing.ram_access_cycles = 10;
  Ecosystem slow_ecosystem(slow);
  Ecosystem fast_ecosystem;

  auto workload = find_workload("checksum");
  ASSERT_TRUE(workload.ok());
  auto program = fast_ecosystem.build(*workload);
  ASSERT_TRUE(program.ok());

  auto slow_run = slow_ecosystem.run(*program);
  auto fast_run = fast_ecosystem.run(*program);
  ASSERT_TRUE(slow_run.ok());
  ASSERT_TRUE(fast_run.ok());
  EXPECT_GT(slow_run->result.cycles, fast_run->result.cycles);
  EXPECT_EQ(slow_run->result.instructions, fast_run->result.instructions);

  // The WCET side must honor the same parameters.
  auto slow_wcet = slow_ecosystem.analyze_wcet(*program);
  auto fast_wcet = fast_ecosystem.analyze_wcet(*program);
  ASSERT_TRUE(slow_wcet.ok());
  ASSERT_TRUE(fast_wcet.ok());
  EXPECT_GE(slow_wcet->total_wcet, fast_wcet->total_wcet);
  EXPECT_GE(slow_wcet->total_wcet, slow_run->result.cycles);
}

}  // namespace
}  // namespace s4e::core
