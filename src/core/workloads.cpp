#include "core/workloads.hpp"

namespace s4e::core {

namespace {

// --- quickstart: checksum over a word table. Exit code = sum (136).
constexpr const char* kChecksum = R"(
_start:
    la t0, data
    li t1, 16
    li a0, 0
sum_loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, sum_loop
    li a7, 93
    ecall
.data
data:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
)";

// --- FIR filter: 8 output points of a 4-tap filter, via a called dot4
// helper (exercises the interprocedural WCET path). Exit = sum of outputs.
constexpr const char* kFir = R"(
_start:
    la s0, samples
    la s1, coeffs
    la s3, output
    li s2, 8
fir_outer:
    mv a0, s0
    mv a1, s1
    call dot4
    sw a0, 0(s3)
    addi s3, s3, 4
    addi s0, s0, 4
    addi s2, s2, -1
    bnez s2, fir_outer
    la t0, output
    li t1, 8
    li a0, 0
acc_loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, acc_loop
    li a7, 93
    ecall

dot4:
    li t0, 4
    li a2, 0
dot_loop:
    lw t3, 0(a0)
    lw t4, 0(a1)
    mul t3, t3, t4
    add a2, a2, t3
    addi a0, a0, 4
    addi a1, a1, 4
    addi t0, t0, -1
    bnez t0, dot_loop
    mv a0, a2
    ret
.data
samples:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11
coeffs:
    .word 1, 1, 1, 1
output:
    .space 32
)";

// --- bubble sort of 8 words + sortedness check. Exit 0 when sorted.
constexpr const char* kBubbleSort = R"(
_start:
    li s2, 7
outer:
    la t1, array
    li t0, 0
inner:
    .loopbound 7
    lw t2, 0(t1)
    lw t3, 4(t1)
    ble t2, t3, noswap
    sw t3, 0(t1)
    sw t2, 4(t1)
noswap:
    addi t1, t1, 4
    addi t0, t0, 1
    blt t0, s2, inner
    addi s2, s2, -1
    bnez s2, outer
    la t1, array
    li s3, 7
check:
    lw t2, 0(t1)
    lw t3, 4(t1)
    bgt t2, t3, bad
    addi t1, t1, 4
    addi s3, s3, -1
    bnez s3, check
    li a0, 0
    li a7, 93
    ecall
bad:
    li a0, 1
    li a7, 93
    ecall
.data
array:
    .word 5, 2, 9, 1, 7, 3, 8, 4
)";

// --- CRC-32 (reflected, poly 0xEDB88320) of "123456789"; the standard
// check value is 0xCBF43926. Exit 0 on match.
constexpr const char* kCrc32 = R"(
_start:
    la s0, msg
    li s1, 9
    li a0, -1
    li s3, 0xEDB88320
byte_loop:
    lbu t0, 0(s0)
    xor a0, a0, t0
    li t1, 8
bit_loop:
    andi t2, a0, 1
    srli a0, a0, 1
    beqz t2, nobit
    xor a0, a0, s3
nobit:
    addi t1, t1, -1
    bnez t1, bit_loop
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, byte_loop
    xori a0, a0, -1
    li t3, 0xCBF43926
    bne a0, t3, crc_bad
    li a0, 0
    li a7, 93
    ecall
crc_bad:
    li a0, 1
    li a7, 93
    ecall
.data
msg:
    .ascii "123456789"
)";

// --- 4x4 integer matrix multiply (B = identity, so C == A); exit code is
// the byte checksum of C (136).
constexpr const char* kMatmul = R"(
_start:
    la s0, mat_a
    la s1, mat_b
    la s2, mat_c
    li s7, 4
    li s3, 0
iloop:
    li s4, 0
jloop:
    li s5, 0
    li t6, 0
kloop:
    slli t0, s3, 4
    slli t1, s5, 2
    add t0, t0, t1
    add t0, t0, s0
    lw t2, 0(t0)
    slli t3, s5, 4
    slli t4, s4, 2
    add t3, t3, t4
    add t3, t3, s1
    lw t5, 0(t3)
    mul t2, t2, t5
    add t6, t6, t2
    addi s5, s5, 1
    blt s5, s7, kloop
    slli t0, s3, 4
    slli t1, s4, 2
    add t0, t0, t1
    add t0, t0, s2
    sw t6, 0(t0)
    addi s4, s4, 1
    blt s4, s7, jloop
    addi s3, s3, 1
    blt s3, s7, iloop
    la t0, mat_c
    li s6, 16
    li a0, 0
csum:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi s6, s6, -1
    bnez s6, csum
    andi a0, a0, 0xff
    li a7, 93
    ecall
.data
mat_a:
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
mat_b:
    .word 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1
mat_c:
    .space 64
)";

// --- Sieve of Eratosthenes over [2, 100); exit code = prime count (25).
constexpr const char* kSieve = R"(
_start:
    la s0, flags
    li s7, 100
    li s1, 2
sieve_outer:
    add t0, s0, s1
    lbu t1, 0(t0)
    bnez t1, notprime
    add t2, s1, s1
mark:
    .loopbound 50
    bge t2, s7, endmark
    add t3, s0, t2
    li t4, 1
    sb t4, 0(t3)
    add t2, t2, s1
    j mark
endmark:
notprime:
    addi s1, s1, 1
    blt s1, s7, sieve_outer
    li s2, 2
    li a0, 0
count:
    add t0, s0, s2
    lbu t1, 0(t0)
    seqz t1, t1
    add a0, a0, t1
    addi s2, s2, 1
    blt s2, s7, count
    li a7, 93
    ecall
.data
flags:
    .space 100
)";

// --- Lock control (the MBMV'19 security scenario): read a 4-digit PIN from
// the UART, compare against the stored secret, answer OPEN/DENY over the
// UART TX — with all TX traffic going through the dedicated driver routine
// `uart_puts` (the policy anchor for the memwatch analysis). With no input
// queued the lock denies: exit 1.
constexpr const char* kLockCtrl = R"(
.equ UART_BASE, 0x10000000
_start:
    la s0, secret
    li s1, 4
    li s2, 1
    li s3, UART_BASE
read_loop:
    lw t0, 8(s3)
    andi t0, t0, 1
    beqz t0, deny
    lw t1, 4(s3)
    lbu t2, 0(s0)
    beq t1, t2, digit_ok
    li s2, 0
digit_ok:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, read_loop
    beqz s2, deny
open:
    la a1, open_msg
    call uart_puts
    li a0, 0
    li a7, 93
    ecall
deny:
    la a1, deny_msg
    call uart_puts
    li a0, 1
    li a7, 93
    ecall

uart_puts:
    li t5, UART_BASE
puts_loop:
    .loopbound 6
    lbu t4, 0(a1)
    beqz t4, puts_done
    sw t4, 0(t5)
    addi a1, a1, 1
    j puts_loop
puts_done:
    ret
uart_puts_end:
    nop
.data
secret:
    .ascii "1234"
open_msg:
    .asciz "OPEN\n"
deny_msg:
    .asciz "DENY\n"
)";

// --- The attack variant of the lock: after a deny, rogue code bypasses the
// driver and writes to the UART TX register directly. Functionally the
// output only gains one byte — but the memwatch policy flags the access.
constexpr const char* kAttackLock = R"(
.equ UART_BASE, 0x10000000
_start:
    la s0, secret
    li s1, 4
    li s2, 1
    li s3, UART_BASE
read_loop:
    lw t0, 8(s3)
    andi t0, t0, 1
    beqz t0, deny
    lw t1, 4(s3)
    lbu t2, 0(s0)
    beq t1, t2, digit_ok
    li s2, 0
digit_ok:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, read_loop
    beqz s2, deny
open:
    la a1, open_msg
    call uart_puts
    li a0, 0
    li a7, 93
    ecall
deny:
    la a1, deny_msg
    call uart_puts
attack:
    li t0, UART_BASE
    li t1, 88
    sw t1, 0(t0)
    li a0, 1
    li a7, 93
    ecall

uart_puts:
    li t5, UART_BASE
puts_loop:
    .loopbound 6
    lbu t4, 0(a1)
    beqz t4, puts_done
    sw t4, 0(t5)
    addi a1, a1, 1
    j puts_loop
puts_done:
    ret
uart_puts_end:
    nop
.data
secret:
    .ascii "1234"
open_msg:
    .asciz "OPEN\n"
deny_msg:
    .asciz "DENY\n"
)";


// --- Fixed-point PID-style controller driving a first-order plant for 50
// steps; converges to the target, self-check on the residual error.
constexpr const char* kPid = R"(
_start:
    li s0, 0           # plant state x (Q4)
    li s1, 3200        # target (200 << 4)
    li s2, 50          # control steps
    li s3, 3           # proportional gain
pid_loop:
    sub t0, s1, s0     # error
    mul t1, t0, s3
    srai t2, t1, 4     # u = (Kp * e) >> 4
    add s0, s0, t2     # plant: x += u
    addi s2, s2, -1
    bnez s2, pid_loop
    sub t0, s1, s0     # residual error
    bltz t0, pid_bad
    li t1, 9
    bge t0, t1, pid_bad
    li a0, 0
    li a7, 93
    ecall
pid_bad:
    li a0, 1
    li a7, 93
    ecall
)";

// --- Byte histogram into 16 bins; the source pattern (7i mod 256) hits
// every residue class mod 16 exactly 4 times. Exit = bins[5] = 4.
constexpr const char* kHistogram = R"(
_start:
    la s0, bytes
    la s1, bins
    li s2, 64
hist_loop:
    lbu t0, 0(s0)
    andi t0, t0, 15
    slli t0, t0, 2
    add t0, t0, s1
    lw t1, 0(t0)
    addi t1, t1, 1
    sw t1, 0(t0)
    addi s0, s0, 1
    addi s2, s2, -1
    bnez s2, hist_loop
    lw a0, 20(s1)      # bins[5]
    li a7, 93
    ecall
.data
bytes:
    .byte 0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84, 91, 98, 105, 112, 119, 126, 133, 140, 147, 154, 161, 168, 175, 182, 189, 196, 203, 210, 217, 224, 231, 238, 245, 252, 3, 10, 17, 24, 31, 38, 45, 52, 59, 66, 73, 80, 87, 94, 101, 108, 115, 122, 129, 136, 143, 150, 157, 164, 171, 178, 185
bins:
    .space 64
)";

// --- Binary search in a sorted 16-entry table; the loop is data-dependent
// (two distinct back edges) and needs a .loopbound annotation. Exit = the
// index of the key (11).
constexpr const char* kBsearch = R"(
_start:
    la s0, table
    li s1, 0           # lo
    li s2, 16          # hi
    li s3, 743         # key
bs_loop:
    .loopbound 5
    bge s1, s2, notfound
    add t0, s1, s2
    srli t0, t0, 1     # mid
    slli t1, t0, 2
    add t1, t1, s0
    lw t2, 0(t1)
    beq t2, s3, found
    blt t2, s3, go_right
    mv s2, t0          # hi = mid
    j bs_loop
go_right:
    addi s1, t0, 1
    j bs_loop
found:
    mv a0, t0
    li a7, 93
    ecall
notfound:
    li a0, 255
    li a7, 93
    ecall
.data
table:
    .word 3, 17, 29, 55, 101, 190, 288, 310
    .word 402, 555, 680, 743, 800, 855, 901, 999
)";

// --- Jump-table dispatcher: a byte-coded interpreter loop whose handlers
// are reached through a `.word`-table `jr`. The selector is masked to the
// table size, so the data-flow resolver can enumerate all four targets and
// the WCET analyzer sees explicit edges. Exit = accumulator (25).
constexpr const char* kJumptab = R"(
_start:
    la s0, opcodes
    li s1, 8           # opcode count
    li s2, 0           # accumulator
dispatch:
    lbu t0, 0(s0)
    andi t0, t0, 3     # clamp selector to the table
    slli t0, t0, 2
    la t1, table
    add t0, t0, t1
    lw t0, 0(t0)
    jalr zero, 0(t0)   # jump-table dispatch
op_add:
    addi s2, s2, 5
    j next
op_sub:
    addi s2, s2, -2
    j next
op_dbl:
    slli s2, s2, 1
    j next
op_nop:
next:
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, dispatch
    mv a0, s2
    li a7, 93
    ecall
.data
opcodes:
    .byte 0, 1, 2, 0, 3, 2, 1, 0
table:
    .word op_add, op_sub, op_dbl, op_nop
)";

// --- call chain: a two-level balanced call chain with a spilled frame —
// the interprocedural-analysis workload (summaries prove the chain
// balanced, so the static stack depth is concrete). Exit = square_plus(5)
// + square_plus(3) = 27 + 13 = 40.
constexpr const char* kCallchain = R"(
_start:
    li a0, 5
    call square_plus
    mv s0, a0
    li a0, 3
    call square_plus
    add a0, a0, s0
    li a7, 93
    ecall

# square_plus(x) = x*x + bias(x); spills ra and x across the inner call.
square_plus:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    call bias
    lw t0, 8(sp)
    mul t0, t0, t0
    add a0, a0, t0
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

# bias(x) = (x & 3) + 1: a leaf with no frame.
bias:
    andi a0, a0, 3
    addi a0, a0, 1
    ret
)";

// --- SMP spinlock: every hart takes a test-and-set lock (amoswap.w) 64
// times and adds 1 to a shared counter under it. Hart 0 then checks the
// counter reached at least its own contribution and exits 0; the other
// harts park in a wfi loop. Runs unchanged on any hart count (on a
// single-hart machine only the hart-0 path executes).
constexpr const char* kSmpSpinlock = R"(
_start:
    csrr t0, mhartid
    la s0, lock
    la s2, counter
    li s1, 64
    bnez t0, worker
    call add_loop
    lw t4, 0(s2)
    li t5, 64
    blt t4, t5, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall

worker:
    call add_loop
park:
    wfi
    j park

# add_loop: s1 rounds of lock / counter += 1 / unlock. The lock is a
# test-and-set word: amoswap.w 1 acquires when the old value was 0, and
# an amoswap.w of 0 releases.
add_loop:
acquire:
    li t1, 1
    amoswap.w t2, t1, (s0)
    bnez t2, acquire
    lw t3, 0(s2)
    addi t3, t3, 1
    sw t3, 0(s2)
    amoswap.w zero, zero, (s0)
    addi s1, s1, -1
    bnez s1, add_loop
    ret
.data
lock:
    .word 0
counter:
    .word 0
)";

// --- SMP message passing: a shared ticket counter bumped with an lr.w/sc.w
// retry loop hands every hart unique slots in a shared log; each hart writes
// its marker (mhartid + 1) into its slots. Hart 0 takes 16 tickets,
// remembers its slot indexes, and verifies afterwards that no other hart
// overwrote them (tickets are unique, so a clobber means broken atomics).
// Exit 0 on success for any hart count.
constexpr const char* kSmpMsgpass = R"(
_start:
    csrr s0, mhartid
    addi s6, s0, 1
    li s1, 16
    la s2, ticket
    la s3, log
    la s4, mine
    bnez s0, sec_loop
h0_loop:
    call take_ticket
    sw t0, 0(s4)
    addi s4, s4, 4
    addi s1, s1, -1
    bnez s1, h0_loop
    la s4, mine
    li s1, 16
verify:
    lw t0, 0(s4)
    slli t0, t0, 2
    add t0, t0, s3
    lw t1, 0(t0)
    bne t1, s6, fail
    addi s4, s4, 4
    addi s1, s1, -1
    bnez s1, verify
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall

sec_loop:
    call take_ticket
    addi s1, s1, -1
    bnez s1, sec_loop
park:
    wfi
    j park

# take_ticket: fetch-and-increment `ticket` with an lr/sc retry loop (the
# sc fails when another hart's store broke the reservation), then write the
# caller's marker into log[ticket]. Returns the ticket in t0.
take_ticket:
    lr.w t0, (s2)
    addi t1, t0, 1
    sc.w t2, t1, (s2)
    bnez t2, take_ticket
    andi t3, t0, 127
    slli t3, t3, 2
    add t3, t3, s3
    sw s6, 0(t3)
    ret
.data
ticket:
    .word 0
log:
    .space 512
mine:
    .space 64
)";

}  // namespace

const std::vector<Workload>& standard_workloads() {
  static const std::vector<Workload> workloads = {
      {"checksum", "word-table checksum (quickstart kernel)", kChecksum, 136,
       true},
      {"fir", "4-tap FIR filter via a called dot-product helper", kFir, 192,
       true},
      {"bubble_sort", "bubble sort of 8 words with sortedness self-check",
       kBubbleSort, 0, true},
      {"crc32", "bitwise CRC-32 with the standard check value", kCrc32, 0,
       true},
      {"matmul", "4x4 integer matrix multiply (identity check)", kMatmul, 136,
       true},
      {"sieve", "sieve of Eratosthenes over [2, 100)", kSieve, 25, true},
      {"lock_ctrl", "UART lock control (security scenario, denies w/o input)",
       kLockCtrl, 1, true},
      {"attack_lock", "lock control with an unauthorized direct UART write",
       kAttackLock, 1, true},
      {"pid", "fixed-point PID-style controller with convergence self-check",
       kPid, 0, true},
      {"histogram", "byte histogram into 16 bins over a 64-byte buffer",
       kHistogram, 4, true},
      {"bsearch", "binary search in a sorted table (annotated bound)",
       kBsearch, 11, true},
      {"jumptab", "byte-coded dispatcher through a .word jump table",
       kJumptab, 25, true},
      {"callchain", "balanced two-level call chain with a spilled frame",
       kCallchain, 40, true},
      {"smp_spinlock", "amoswap spinlock guarding a shared counter (SMP)",
       kSmpSpinlock, 0, false},
      {"smp_msgpass", "lr/sc ticket counter with per-hart log slots (SMP)",
       kSmpMsgpass, 0, false},
  };
  return workloads;
}

Result<Workload> find_workload(const std::string& name) {
  for (const Workload& workload : standard_workloads()) {
    if (workload.name == name) return workload;
  }
  return Error(ErrorCode::kNotFound, "no workload named '" + name + "'");
}

}  // namespace s4e::core
