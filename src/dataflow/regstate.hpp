// Forward abstract-interpretation domain over the 32 GPRs.
//
// Each state tracks, per register, an AbsValue plus a may-be-uninitialized
// bit. The entry state is ABI-aware: at the program entry point x0 and sp
// (set by the loader) and the argument/global registers are initialized,
// while ra and the temporaries/saved registers hold reset garbage; at a
// callee entry everything is initialized (the caller's frame is live) and
// sp is the fresh frame reference. Call-return edges clobber the
// caller-saved registers and preserve sp and the callee-saved registers —
// the standard RV32 calling-convention assumption, which hand-written
// assembly in workloads/ must honour for the results to be sound.
#pragma once

#include <array>
#include <optional>

#include "cfg/cfg.hpp"
#include "dataflow/absvalue.hpp"
#include "dataflow/memmodel.hpp"
#include "isa/defuse.hpp"
#include "isa/registers.hpp"

namespace s4e::dataflow {

constexpr u32 reg_bit(unsigned reg) { return u32{1} << reg; }

// ra, t0-t2, a0-a7, t3-t6: clobbered across calls.
inline constexpr u32 kCallerSavedMask =
    reg_bit(1) | reg_bit(5) | reg_bit(6) | reg_bit(7) |
    (0xffu << 10) |                    // a0-a7
    (0xfu << 28);                      // t3-t6

struct RegState {
  bool reached = false;
  std::array<AbsValue, isa::kGprCount> regs;  // default: all bottom
  u32 maybe_uninit = 0;
};

class RegDomain {
 public:
  static constexpr bool kForward = true;
  using State = RegState;

  struct Options {
    bool is_entry_function = false;
    const MemModel* mem = nullptr;
  };

  explicit RegDomain(const Options& options) : options_(options) {}

  State boundary(const cfg::Function& fn, const cfg::BasicBlock& block) const;
  State transfer(const cfg::Function& fn, const cfg::BasicBlock& block,
                 State state) const;
  bool join(State& into, const State& from, bool widen) const;
  bool edge_feasible(const cfg::Function& fn, const cfg::BasicBlock& block,
                     const State& out, const cfg::Edge& edge) const;

  // Small-step update for one instruction at `pc`. Public so linter walks
  // can replay blocks from a solved in-state.
  static void apply(const isa::Instr& instr, u32 pc, const MemModel* mem,
                    State& state);

  // Post-block effect: the call-return clobber for kCall blocks.
  static void finish_block(const cfg::BasicBlock& block, State& state);

  // Definite branch outcome from the state at the branch, if decidable.
  static std::optional<bool> eval_branch(const isa::Instr& branch,
                                         const State& state);

 private:
  Options options_;
};

// Replay `block` from `state` (its solved in-state), invoking
// cb(pc, instr, state_before_instr) ahead of every instruction, then
// applying it. Runs finish_block at the end.
template <typename Cb>
void walk_block(const cfg::BasicBlock& block, const MemModel* mem,
                RegState state, Cb&& cb) {
  u32 pc = block.start;
  for (const isa::Instr& instr : block.insns) {
    cb(pc, instr, state);
    RegDomain::apply(instr, pc, mem, state);
    pc += instr.length;
  }
  RegDomain::finish_block(block, state);
}

// Abstract effective address of the load/store `instr` in `state`.
AbsValue effective_address(const isa::Instr& instr, const RegState& state);

// Access width in bytes for a load/store op.
u32 access_size(isa::Op op);

}  // namespace s4e::dataflow
