#include "fleet/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace s4e::fleet {

std::string encode_header(const CheckpointHeader& header) {
  return format("{\"checkpoint\":\"s4e-fleet\",\"mode\":\"%s\","
                "\"fingerprint\":\"%016llx\",\"shards\":%u}",
                std::string(to_string(header.mode)).c_str(),
                static_cast<unsigned long long>(header.fingerprint),
                header.shards);
}

std::string encode_shard_header(const CompletedShard& shard) {
  return format("{\"shard\":%u,\"count\":%zu,\"begin\":%llu,\"end\":%llu,"
                "\"total\":%llu,\"golden_exit\":%d,"
                "\"golden_instructions\":%llu}",
                shard.shard, shard.records.size(),
                static_cast<unsigned long long>(shard.begin),
                static_cast<unsigned long long>(shard.end),
                static_cast<unsigned long long>(shard.total),
                shard.golden_exit,
                static_cast<unsigned long long>(shard.golden_instructions));
}

Result<std::vector<CompletedShard>> parse_journal(
    const std::string& text, const CheckpointHeader& header,
    bool& header_matches) {
  header_matches = false;
  std::vector<CompletedShard> shards;

  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      line.find("\"checkpoint\":\"s4e-fleet\"") == std::string::npos) {
    return Error(ErrorCode::kParseError, "checkpoint: missing header line");
  }
  const auto mode_name = json_field(line, "mode");
  const auto fingerprint = json_field(line, "fingerprint");
  const auto shard_count = json_int_field(line, "shards");
  if (!mode_name || !fingerprint || !shard_count) {
    return Error(ErrorCode::kParseError, "checkpoint: malformed header");
  }
  const auto mode = parse_mode(*mode_name);
  const auto fp = parse_hex_u64(*fingerprint);
  if (!mode || !fp) {
    return Error(ErrorCode::kParseError, "checkpoint: malformed header");
  }
  if (*mode != header.mode || *fp != header.fingerprint ||
      static_cast<unsigned>(*shard_count) != header.shards) {
    return shards;  // different campaign; header_matches stays false
  }
  header_matches = true;

  // Shard blocks. Any structural defect means the daemon died mid-append:
  // the partial block and everything after it are discarded, not errors.
  while (std::getline(in, line)) {
    const auto shard = json_int_field(line, "shard");
    const auto count = json_int_field(line, "count");
    if (!shard || !count || *count < 0 ||
        line.find("\"begin\"") == std::string::npos) {
      break;
    }
    CompletedShard block;
    block.shard = static_cast<unsigned>(*shard);
    const auto begin = json_int_field(line, "begin");
    const auto end = json_int_field(line, "end");
    const auto total = json_int_field(line, "total");
    const auto golden_exit = json_int_field(line, "golden_exit");
    const auto golden_insns = json_int_field(line, "golden_instructions");
    if (!begin || !end || !total || !golden_exit || !golden_insns) break;
    block.begin = static_cast<u64>(*begin);
    block.end = static_cast<u64>(*end);
    block.total = static_cast<u64>(*total);
    block.golden_exit = static_cast<int>(*golden_exit);
    block.golden_instructions = static_cast<u64>(*golden_insns);

    bool truncated = false;
    block.records.reserve(static_cast<std::size_t>(*count));
    for (long long i = 0; i < *count; ++i) {
      if (!std::getline(in, line)) {
        truncated = true;
        break;
      }
      auto parsed = parse_line(line, header.mode);
      if (!parsed.ok() || !parsed->record.has_value()) {
        truncated = true;
        break;
      }
      block.records.push_back(*parsed->record);
    }
    if (truncated) break;

    if (!std::getline(in, line)) break;
    const auto commit = json_int_field(line, "commit");
    if (!commit || static_cast<unsigned>(*commit) != block.shard) break;
    shards.push_back(std::move(block));
  }

  std::sort(shards.begin(), shards.end(),
            [](const CompletedShard& a, const CompletedShard& b) {
              return a.shard < b.shard;
            });
  return shards;
}

CheckpointJournal& CheckpointJournal::operator=(
    CheckpointJournal&& other) noexcept {
  if (this != &other) {
    close();
    file_ = other.file_;
    mode_ = other.mode_;
    other.file_ = nullptr;
  }
  return *this;
}

CheckpointJournal::~CheckpointJournal() { close(); }

void CheckpointJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<CheckpointJournal> CheckpointJournal::open(
    const std::string& path, const CheckpointHeader& header,
    std::vector<CompletedShard>& recovered, bool& replaced_stale) {
  recovered.clear();
  replaced_stale = false;

  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }

  bool resume = false;
  if (!existing.empty()) {
    bool matches = false;
    auto parsed = parse_journal(existing, header, matches);
    if (parsed.ok() && matches) {
      recovered = std::move(*parsed);
      resume = true;
    } else {
      replaced_stale = true;  // different campaign or unreadable header
    }
  }

  CheckpointJournal journal;
  journal.mode_ = header.mode;
  if (resume) {
    // Re-write the journal from the committed blocks only, so a partial
    // trailing block does not accumulate garbage across restarts. The
    // rewrite goes through a temp file + rename, like the live commits.
    const std::string temp = path + ".tmp." + std::to_string(::getpid());
    std::FILE* out = std::fopen(temp.c_str(), "wb");
    if (out == nullptr) {
      return Error(ErrorCode::kIoError,
                   "checkpoint: cannot open " + temp + " for writing");
    }
    std::string text = encode_header(header) + "\n";
    for (const CompletedShard& shard : recovered) {
      text += encode_shard_header(shard) + "\n";
      for (const RecordLine& record : shard.records) {
        text += encode(header.mode, record) + "\n";
      }
      text += format("{\"commit\":%u}", shard.shard) + "\n";
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    const bool synced = ::fsync(::fileno(out)) == 0;
    std::fclose(out);
    if (!wrote || !synced || std::rename(temp.c_str(), path.c_str()) != 0) {
      std::remove(temp.c_str());
      return Error(ErrorCode::kIoError,
                   "checkpoint: cannot rewrite " + path);
    }
    journal.file_ = std::fopen(path.c_str(), "ab");
  } else {
    journal.file_ = std::fopen(path.c_str(), "wb");
    if (journal.file_ != nullptr) {
      const std::string line = encode_header(header) + "\n";
      if (std::fwrite(line.data(), 1, line.size(), journal.file_) !=
              line.size() ||
          std::fflush(journal.file_) != 0) {
        journal.close();
      }
    }
  }
  if (journal.file_ == nullptr) {
    return Error(ErrorCode::kIoError,
                 "checkpoint: cannot open " + path + " for appending");
  }
  return journal;
}

Status CheckpointJournal::commit(const CompletedShard& shard) {
  S4E_CHECK_MSG(file_ != nullptr, "checkpoint journal is closed");
  std::string text = encode_shard_header(shard) + "\n";
  for (const RecordLine& record : shard.records) {
    text += encode(mode_, record) + "\n";
  }
  text += format("{\"commit\":%u}", shard.shard) + "\n";
  if (std::fwrite(text.data(), 1, text.size(), file_) != text.size() ||
      std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Error(ErrorCode::kIoError, "checkpoint: append failed");
  }
  return Status();
}

}  // namespace s4e::fleet
