// Minimal leveled logging. Campaign runners emit a lot of per-mutant
// status; default level is kWarn so batch runs stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace s4e {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// Writes one line ("[level] message") to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define S4E_LOG(level) ::s4e::detail::LogLine(level)
#define S4E_DEBUG() S4E_LOG(::s4e::LogLevel::kDebug)
#define S4E_INFO() S4E_LOG(::s4e::LogLevel::kInfo)
#define S4E_WARN() S4E_LOG(::s4e::LogLevel::kWarn)
#define S4E_ERROR() S4E_LOG(::s4e::LogLevel::kError)

}  // namespace s4e
