file(REMOVE_RECURSE
  "CMakeFiles/bench_memwatch.dir/bench_memwatch.cpp.o"
  "CMakeFiles/bench_memwatch.dir/bench_memwatch.cpp.o.d"
  "bench_memwatch"
  "bench_memwatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memwatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
