#include "dataflow/absvalue.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/strings.hpp"

namespace s4e::dataflow {

namespace {

constexpr i64 kI32Min = -(i64{1} << 31);
constexpr i64 kI32Max = (i64{1} << 31) - 1;

bool fits_i32(i64 v) { return v >= kI32Min && v <= kI32Max; }

i64 canon(u32 raw) { return static_cast<i64>(static_cast<i32>(raw)); }

// Common stride of a sorted value set: gcd of consecutive differences
// (0 for a singleton).
i64 stride_of(const std::vector<i64>& values) {
  i64 g = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    g = std::gcd(g, values[i] - values[i - 1]);
  }
  return g;
}

// Element-wise evaluation when the operand sets are small enough that the
// exact image can be computed. Returns nullopt when either side is not
// enumerable or the pair count exceeds the budget.
template <typename F>
std::optional<AbsValue> elementwise(const AbsValue& a, const AbsValue& b,
                                    F&& f) {
  const u64 ca = a.count();
  const u64 cb = b.count();
  if (ca == 0 || cb == 0 || ca * cb > AbsValue::kMaxEnum) return std::nullopt;
  const auto va = a.enumerate();
  const auto vb = b.enumerate();
  std::vector<i64> out;
  out.reserve(va.size() * vb.size());
  for (u32 x : va) {
    for (u32 y : vb) out.push_back(canon(f(x, y)));
  }
  return AbsValue::from_values(std::move(out));
}

// Interval hull of two bounded values with a sound common stride.
AbsValue hull(const AbsValue& a, const AbsValue& b) {
  const i64 lo = std::min(a.lo(), b.lo());
  const i64 hi = std::max(a.hi(), b.hi());
  i64 g = std::gcd(a.stride(), b.stride());
  g = std::gcd(g, b.lo() - a.lo());
  return AbsValue::range(lo, hi, g);
}

// Smallest power-of-two bound: values of a, b in [0, 2^k) stay in [0, 2^k)
// under or/xor/and.
i64 pow2_bound(i64 max_hi) {
  i64 bound = 1;
  while (bound <= max_hi) bound <<= 1;
  return bound - 1;
}

}  // namespace

AbsValue AbsValue::top() {
  AbsValue v;
  v.kind_ = Kind::kTop;
  return v;
}

AbsValue AbsValue::constant(u32 raw) {
  AbsValue v;
  v.kind_ = Kind::kConsts;
  v.values_ = {canon(raw)};
  return v;
}

AbsValue AbsValue::from_values(std::vector<i64> values) {
  if (values.empty()) return bottom();
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  for (i64 v : values) {
    if (!fits_i32(v)) return top();
  }
  if (values.size() > kMaxConsts) {
    const i64 g = stride_of(values);
    return range(values.front(), values.back(), g);
  }
  AbsValue v;
  v.kind_ = Kind::kConsts;
  v.values_ = std::move(values);
  return v;
}

AbsValue AbsValue::range(i64 lo, i64 hi, i64 stride) {
  if (lo > hi) return bottom();
  if (!fits_i32(lo) || !fits_i32(hi)) return top();
  if (lo == hi) return from_values({lo});
  if (stride < 1) stride = 1;
  // The stride must tile the interval; widening it to a divisor of the
  // span only adds values (sound).
  stride = std::gcd(stride, hi - lo);
  AbsValue v;
  v.kind_ = Kind::kRange;
  v.lo_ = lo;
  v.hi_ = hi;
  v.stride_ = stride;
  return v;
}

AbsValue AbsValue::stack(i64 lo, i64 hi, i64 stride) {
  if (lo > hi || !fits_i32(lo) || !fits_i32(hi)) return top();
  AbsValue v;
  v.kind_ = Kind::kStack;
  v.lo_ = lo;
  v.hi_ = hi;
  v.stride_ = lo == hi ? 1 : std::gcd(stride < 1 ? 1 : stride, hi - lo);
  return v;
}

i64 AbsValue::lo() const noexcept {
  return kind_ == Kind::kConsts ? values_.front() : lo_;
}

i64 AbsValue::hi() const noexcept {
  return kind_ == Kind::kConsts ? values_.back() : hi_;
}

i64 AbsValue::stride() const noexcept {
  if (kind_ == Kind::kConsts) {
    const i64 g = stride_of(values_);
    return g == 0 ? 1 : g;
  }
  return stride_;
}

u64 AbsValue::count() const noexcept {
  switch (kind_) {
    case Kind::kConsts:
      return values_.size();
    case Kind::kRange:
      return static_cast<u64>((hi_ - lo_) / stride_) + 1;
    default:
      return 0;
  }
}

std::vector<u32> AbsValue::enumerate(u64 limit) const {
  const u64 n = count();
  if (n == 0 || n > limit) return {};
  std::vector<u32> out;
  out.reserve(n);
  if (kind_ == Kind::kConsts) {
    for (i64 v : values_) out.push_back(static_cast<u32>(v));
  } else {
    for (i64 v = lo_; v <= hi_; v += stride_) out.push_back(static_cast<u32>(v));
  }
  return out;
}

AbsValue AbsValue::join(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  if (a.is_top() || b.is_top()) return top();
  if (a == b) return a;
  if (a.is_stack() || b.is_stack()) {
    if (a.is_stack() && b.is_stack()) {
      const i64 g = std::gcd(std::gcd(a.stride(), b.stride()), b.lo() - a.lo());
      return stack(std::min(a.lo(), b.lo()), std::max(a.hi(), b.hi()), g);
    }
    return top();  // stack pointer joined with a plain value
  }
  if (a.is_consts() && b.is_consts()) {
    std::vector<i64> merged = a.values_;
    merged.insert(merged.end(), b.values_.begin(), b.values_.end());
    return from_values(std::move(merged));
  }
  return hull(a, b);
}

std::string AbsValue::describe() const {
  switch (kind_) {
    case Kind::kBottom:
      return "unreached";
    case Kind::kTop:
      return "unknown";
    case Kind::kStack:
      if (lo_ == hi_) return format("sp%+lld", static_cast<long long>(lo_));
      return format("sp+[%lld..%lld]", static_cast<long long>(lo_),
                    static_cast<long long>(hi_));
    case Kind::kRange:
      return format("[0x%08x..0x%08x step %lld]", static_cast<u32>(lo_),
                    static_cast<u32>(hi_), static_cast<long long>(stride_));
    case Kind::kConsts: {
      std::string out = "{";
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i != 0) out += ",";
        out += format("0x%x", static_cast<u32>(values_[i]));
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

AbsValue av_add(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (a.is_stack() || b.is_stack()) {
    const AbsValue& sp = a.is_stack() ? a : b;
    const AbsValue& off = a.is_stack() ? b : a;
    if (!off.has_bounds()) return AbsValue::top();  // incl. stack + stack
    return AbsValue::stack(sp.lo() + off.lo(), sp.hi() + off.hi(),
                           std::gcd(sp.stride(), off.stride()));
  }
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x + y; })) {
    return *exact;
  }
  if (a.has_bounds() && b.has_bounds()) {
    return AbsValue::range(a.lo() + b.lo(), a.hi() + b.hi(),
                           std::gcd(a.stride(), b.stride()));
  }
  return AbsValue::top();
}

AbsValue av_sub(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (a.is_stack() && b.is_stack()) {
    // (sp + x) - (sp + y) = x - y: a plain bounded value again.
    return AbsValue::range(a.lo() - b.hi(), a.hi() - b.lo(),
                           std::gcd(a.stride(), b.stride()));
  }
  if (a.is_stack() && b.has_bounds()) {
    return AbsValue::stack(a.lo() - b.hi(), a.hi() - b.lo(),
                           std::gcd(a.stride(), b.stride()));
  }
  if (a.is_stack() || b.is_stack()) return AbsValue::top();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x - y; })) {
    return *exact;
  }
  if (a.has_bounds() && b.has_bounds()) {
    return AbsValue::range(a.lo() - b.hi(), a.hi() - b.lo(),
                           std::gcd(a.stride(), b.stride()));
  }
  return AbsValue::top();
}

AbsValue av_and(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x & y; })) {
    return *exact;
  }
  // AND with a non-negative constant mask bounds the result to [0, mask]
  // whatever the other side is (even top) — the clamp that makes jump-table
  // selectors like `andi t, t, 3` finite.
  for (const AbsValue* side : {&a, &b}) {
    if (side->is_const() && side->const_value() >= 0) {
      return AbsValue::range(0, side->const_value(), 1);
    }
  }
  if (a.has_bounds() && b.has_bounds() && a.lo() >= 0 && b.lo() >= 0) {
    return AbsValue::range(0, std::min(a.hi(), b.hi()), 1);
  }
  return AbsValue::top();
}

AbsValue av_or(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x | y; })) {
    return *exact;
  }
  if (a.has_bounds() && b.has_bounds() && a.lo() >= 0 && b.lo() >= 0) {
    return AbsValue::range(0, pow2_bound(std::max(a.hi(), b.hi())), 1);
  }
  return AbsValue::top();
}

AbsValue av_xor(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x ^ y; })) {
    return *exact;
  }
  if (a.has_bounds() && b.has_bounds() && a.lo() >= 0 && b.lo() >= 0) {
    return AbsValue::range(0, pow2_bound(std::max(a.hi(), b.hi())), 1);
  }
  return AbsValue::top();
}

AbsValue av_sll(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact =
          elementwise(a, b, [](u32 x, u32 y) { return x << (y & 31); })) {
    return *exact;
  }
  if (b.is_const() && a.has_bounds()) {
    const i64 sh = b.const_value() & 31;
    const i64 lo = a.lo() << sh;
    const i64 hi = a.hi() << sh;
    return AbsValue::range(lo, hi, a.stride() << sh);  // top if out of i32
  }
  return AbsValue::top();
}

AbsValue av_srl(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact =
          elementwise(a, b, [](u32 x, u32 y) { return x >> (y & 31); })) {
    return *exact;
  }
  if (b.is_const() && a.has_bounds() && a.lo() >= 0) {
    const i64 sh = b.const_value() & 31;
    return AbsValue::range(a.lo() >> sh, a.hi() >> sh, 1);
  }
  return AbsValue::top();
}

AbsValue av_sra(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) {
        return static_cast<u32>(static_cast<i32>(x) >> (y & 31));
      })) {
    return *exact;
  }
  if (b.is_const() && a.has_bounds()) {
    const i64 sh = b.const_value() & 31;
    return AbsValue::range(a.lo() >> sh, a.hi() >> sh, 1);
  }
  return AbsValue::top();
}

AbsValue av_mul(const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [](u32 x, u32 y) { return x * y; })) {
    return *exact;
  }
  const AbsValue* cv = a.is_const() ? &a : b.is_const() ? &b : nullptr;
  const AbsValue* rv = a.is_const() ? &b : &a;
  if (cv != nullptr && rv->has_bounds()) {
    const i64 c = cv->const_value();
    if (c == 0) return AbsValue::constant(0);
    const i64 x = rv->lo() * c;
    const i64 y = rv->hi() * c;
    return AbsValue::range(std::min(x, y), std::max(x, y),
                           rv->stride() * (c < 0 ? -c : c));
  }
  return AbsValue::top();
}

AbsValue av_slt(const AbsValue& a, const AbsValue& b, bool is_unsigned) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  if (auto exact = elementwise(a, b, [&](u32 x, u32 y) -> u32 {
        return is_unsigned ? (x < y)
                           : (static_cast<i32>(x) < static_cast<i32>(y));
      })) {
    return *exact;
  }
  if (!is_unsigned && a.has_bounds() && b.has_bounds()) {
    if (a.hi() < b.lo()) return AbsValue::constant(1);
    if (a.lo() >= b.hi()) return AbsValue::constant(0);
  }
  return AbsValue::range(0, 1, 1);
}

AbsValue av_muldiv(isa::Op op, const AbsValue& a, const AbsValue& b) {
  if (a.is_bottom() || b.is_bottom()) return AbsValue::bottom();
  auto f = [op](u32 x, u32 y) -> u32 {
    const i64 sx = static_cast<i32>(x);
    const i64 sy = static_cast<i32>(y);
    switch (op) {
      case isa::Op::kMulh:
        return static_cast<u32>((sx * sy) >> 32);
      case isa::Op::kMulhsu:
        return static_cast<u32>((sx * static_cast<i64>(y)) >> 32);
      case isa::Op::kMulhu:
        return static_cast<u32>(
            (static_cast<u64>(x) * static_cast<u64>(y)) >> 32);
      case isa::Op::kDiv:
        if (y == 0) return ~u32{0};
        if (sx == kI32Min && sy == -1) return x;
        return static_cast<u32>(sx / sy);
      case isa::Op::kDivu:
        return y == 0 ? ~u32{0} : x / y;
      case isa::Op::kRem:
        if (y == 0) return x;
        if (sx == kI32Min && sy == -1) return 0;
        return static_cast<u32>(sx % sy);
      case isa::Op::kRemu:
        return y == 0 ? x : x % y;
      default:
        return 0;
    }
  };
  if (auto exact = elementwise(a, b, f)) return *exact;
  // remu/divu with a positive constant divisor bound the result.
  if (b.is_const() && b.const_value() > 0) {
    const i64 d = b.const_value();
    if (op == isa::Op::kRemu) return AbsValue::range(0, d - 1, 1);
    if (op == isa::Op::kRem) return AbsValue::range(-(d - 1), d - 1, 1);
  }
  return AbsValue::top();
}

}  // namespace s4e::dataflow
