#include "debug/tcp.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace s4e::debug {

namespace {

// Wait until `fd` is readable. Returns 1 when readable (or the peer hung
// up — the following read observes that), 0 on deadline, -1 on poll error.
int wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n >= 0) return n > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
    // EINTR: retry with the full timeout again — fleet/debug deadlines are
    // coarse liveness bounds, not precise timers.
  }
}

}  // namespace

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcpChannel::read_blocking() {
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
    if (n == 0) return {};  // orderly shutdown
    if (errno == EINTR) continue;
    return {};  // connection error → treat as closed
  }
}

std::string TcpChannel::read_for(int timeout_ms, bool& timed_out) {
  timed_out = false;
  const int ready = wait_readable(fd_, timeout_ms);
  if (ready == 0) {
    timed_out = true;
    return {};
  }
  if (ready < 0) return {};  // poll error → treat as closed
  return read_blocking();    // data or EOF is pending; recv cannot block long
}

std::unique_ptr<TcpChannel> TcpChannel::connect_loopback(u16 port,
                                                         std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpChannel>(fd);
}

std::string TcpChannel::read_poll() {
  char buffer[4096];
  const ssize_t n = ::recv(fd_, buffer, sizeof buffer, MSG_DONTWAIT);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
  return {};
}

bool TcpChannel::write_all(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpListener> TcpListener::listen_loopback(u16 port,
                                                          std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  if (::listen(fd, 1) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    error = std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

std::unique_ptr<TcpChannel> TcpListener::accept_one(std::string& error) {
  bool timed_out = false;
  return accept_one_for(-1, error, timed_out);
}

std::unique_ptr<TcpChannel> TcpListener::accept_one_for(int timeout_ms,
                                                        std::string& error,
                                                        bool& timed_out) {
  timed_out = false;
  const int ready = wait_readable(fd_, timeout_ms);
  if (ready == 0) {
    timed_out = true;
    return nullptr;
  }
  if (ready < 0) {
    error = std::string("poll: ") + std::strerror(errno);
    return nullptr;
  }
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      // The RSP is a chatty request/reply protocol; disable Nagle.
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return std::make_unique<TcpChannel>(client);
    }
    if (errno == EINTR) continue;
    error = std::string("accept: ") + std::strerror(errno);
    return nullptr;
  }
}

}  // namespace s4e::debug
