file(REMOVE_RECURSE
  "libs4e_vp.a"
)
