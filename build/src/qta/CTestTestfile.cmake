# CMake generated Testfile for 
# Source directory: /root/repo/src/qta
# Build directory: /root/repo/build/src/qta
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
