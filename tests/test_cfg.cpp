#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cfg/cfg.hpp"
#include "common/strings.hpp"
#include "cfg/dominators.hpp"
#include "cfg/loops.hpp"

namespace s4e::cfg {
namespace {

Result<ProgramCfg> build(std::string_view source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return build_cfg(*program);
}

ProgramCfg build_ok(std::string_view source) {
  auto cfg = build(source);
  EXPECT_TRUE(cfg.ok()) << (cfg.ok() ? "" : cfg.error().to_string());
  return *cfg;
}

TEST(CfgBuilder, StraightLineIsOneBlock) {
  auto cfg = build_ok(R"(
    addi a0, zero, 1
    addi a1, zero, 2
    add a2, a0, a1
    ecall
  )");
  ASSERT_EQ(cfg.functions.size(), 1u);
  const Function& fn = cfg.entry_function();
  ASSERT_EQ(fn.blocks.size(), 1u);
  EXPECT_EQ(fn.blocks[0].insn_count(), 4u);
  EXPECT_EQ(fn.blocks[0].terminator, Terminator::kExit);
  EXPECT_TRUE(fn.blocks[0].successors.empty());
}

TEST(CfgBuilder, BranchSplitsBlocks) {
  auto cfg = build_ok(R"(
    beqz a0, target
    addi a1, zero, 1
target:
    ecall
  )");
  const Function& fn = cfg.entry_function();
  ASSERT_EQ(fn.blocks.size(), 3u);
  const BasicBlock& entry = fn.entry_block();
  EXPECT_EQ(entry.terminator, Terminator::kBranch);
  ASSERT_EQ(entry.successors.size(), 2u);
  EXPECT_EQ(entry.successors[0].kind, EdgeKind::kTaken);
  EXPECT_EQ(entry.successors[1].kind, EdgeKind::kFallThrough);
}

TEST(CfgBuilder, LoopFormsBackEdge) {
  auto cfg = build_ok(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  // entry block (li) -> loop block -> {loop, exit}
  ASSERT_EQ(fn.blocks.size(), 3u);
  Dominators dom(fn);
  auto loop_block = fn.block_at(fn.blocks[0].end);
  ASSERT_TRUE(loop_block.ok());
  bool found_back_edge = false;
  for (const Edge& edge : fn.blocks[*loop_block].successors) {
    if (edge.target == *loop_block) found_back_edge = true;
  }
  EXPECT_TRUE(found_back_edge);
}

TEST(CfgBuilder, CallCreatesSecondFunction) {
  auto cfg = build_ok(R"(
_start:
    call helper
    li a7, 93
    ecall
helper:
    addi a0, a0, 1
    ret
  )");
  ASSERT_EQ(cfg.functions.size(), 2u);
  EXPECT_EQ(cfg.functions[0].name, "_start");
  EXPECT_EQ(cfg.functions[1].name, "helper");
  const BasicBlock& entry = cfg.functions[0].entry_block();
  EXPECT_EQ(entry.terminator, Terminator::kCall);
  EXPECT_EQ(entry.call_target, cfg.functions[1].entry);
  ASSERT_EQ(entry.successors.size(), 1u);
  EXPECT_EQ(entry.successors[0].kind, EdgeKind::kCallReturn);
  EXPECT_EQ(cfg.functions[1].blocks.back().terminator, Terminator::kReturn);
}

TEST(CfgBuilder, SharedHelperDiscoveredOnce) {
  auto cfg = build_ok(R"(
_start:
    call helper
    call helper
    li a7, 93
    ecall
helper:
    ret
  )");
  EXPECT_EQ(cfg.functions.size(), 2u);
}

TEST(CfgBuilder, RejectsIndirectJump) {
  auto result = build(R"(
    la t0, somewhere
    jalr zero, 0(t0)
somewhere:
    ecall
  )");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kAnalysisError);
}

TEST(CfgBuilder, LoopBoundsCarriedThrough) {
  auto cfg = build_ok(R"(
    li t0, 5
loop:
    .loopbound 5
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  ASSERT_EQ(cfg.loop_bounds.size(), 1u);
  EXPECT_EQ(cfg.loop_bounds[0].bound, 5u);
}

TEST(CfgBuilder, DotOutputContainsAllBlocks) {
  auto cfg = build_ok(R"(
    beqz a0, skip
    nop
skip:
    ecall
  )");
  const std::string dot = to_dot(cfg);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const BasicBlock& block : cfg.entry_function().blocks) {
    EXPECT_NE(dot.find(format("0x%08x", block.start)), std::string::npos);
  }
}

TEST(Dominators, DiamondJoin) {
  auto cfg = build_ok(R"(
    beqz a0, left
    addi a1, zero, 1
    j join
left:
    addi a1, zero, 2
join:
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  // Entry dominates everything.
  for (const BasicBlock& block : fn.blocks) {
    EXPECT_TRUE(dom.dominates(0, block.id));
  }
  // Neither arm dominates the join.
  BlockId left = fn.blocks[0].successors[0].target;
  BlockId fall = fn.blocks[0].successors[1].target;
  // Find the join block: successor of both arms.
  BlockId join_id = fn.blocks[left].successors[0].target;
  EXPECT_FALSE(dom.dominates(left, fall));
  EXPECT_FALSE(dom.dominates(left, join_id) && dom.dominates(fall, join_id));
  EXPECT_EQ(dom.idom(join_id), 0u);
}

TEST(Dominators, LinearChain) {
  auto cfg = build_ok(R"(
    beqz a0, b
b:
    beqz a1, c
c:
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  for (const BasicBlock& block : fn.blocks) {
    if (block.id != 0) {
      EXPECT_TRUE(dom.dominates(0, block.id));
    }
  }
  EXPECT_EQ(dom.idom(0), kNoBlock);
}

TEST(Loops, SimpleCountedLoopDetected) {
  auto cfg = build_ok(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->loops.size(), 1u);
  ASSERT_TRUE(forest->loops[0].bound.has_value());
  EXPECT_EQ(*forest->loops[0].bound, 10u);
}

TEST(Loops, IncrementToLimitDetected) {
  auto cfg = build_ok(R"(
    li t0, 0
    li t1, 25
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->loops.size(), 1u);
  ASSERT_TRUE(forest->loops[0].bound.has_value());
  EXPECT_EQ(*forest->loops[0].bound, 25u);
}

TEST(Loops, StrideLargerThanOne) {
  auto cfg = build_ok(R"(
    li t0, 0
    li t1, 10
loop:
    addi t0, t0, 3
    blt t0, t1, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  ASSERT_TRUE(forest->loops[0].bound.has_value());
  EXPECT_EQ(*forest->loops[0].bound, 4u);  // ceil(10/3)
}

TEST(Loops, DownCountToZeroInclusive) {
  // while (r >= 0), step -2, start 9: r = 9,7,5,3,1,-1 -> 5+1 = 5... the
  // body runs for r = 9,7,5,3,1 and once more is NOT entered (exit when
  // r < 0 after the decrement): bound = floor(9/2)+1 = 5.
  auto cfg = build_ok(R"(
    li t0, 9
loop:
    addi t0, t0, -2
    bgez t0, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  ASSERT_TRUE(forest->loops[0].bound.has_value());
  EXPECT_EQ(*forest->loops[0].bound, 5u);
}

TEST(Loops, AnnotationBeatsPattern) {
  auto cfg = build_ok(R"(
    li t0, 10
loop:
    .loopbound 12
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(*forest->loops[0].bound, 12u);
}

TEST(Loops, DataDependentLoopNeedsAnnotation) {
  auto cfg = build_ok(R"(
    la t0, data
    lw t1, 0(t0)
loop:
    addi t1, t1, -1
    bnez t1, loop
    ecall
.data
data:
    .word 10
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  EXPECT_FALSE(forest->loops[0].bound.has_value());
}

TEST(Loops, NestedLoopsDepthAndOrder) {
  auto cfg = build_ok(R"(
    li s0, 4
outer:
    li t0, 3
inner:
    addi t0, t0, -1
    bnez t0, inner
    addi s0, s0, -1
    bnez s0, outer
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->loops.size(), 2u);
  // Innermost first.
  EXPECT_GT(forest->loops[0].depth, forest->loops[1].depth);
  EXPECT_EQ(forest->loops[0].parent, 1);
  EXPECT_EQ(*forest->loops[0].bound, 3u);
  EXPECT_EQ(*forest->loops[1].bound, 4u);
}

TEST(Loops, MultipleWritersDefeatPattern) {
  auto cfg = build_ok(R"(
    li t0, 10
    li t1, 1
    beqz a0, skip
    li t0, 20
skip:
loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok());
  EXPECT_FALSE(forest->loops[0].bound.has_value());
}

// Synthetic function: `n` one-instruction blocks plus explicit edges, for
// exercising dominators/loops on shapes the builder cannot emit directly
// (blocks with no path from the entry).
Function make_fn(std::size_t n,
                 std::initializer_list<std::pair<BlockId, BlockId>> edges) {
  Function fn;
  fn.name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    BasicBlock block;
    block.id = static_cast<BlockId>(i);
    block.start = static_cast<u32>(i * 4);
    block.end = block.start + 4;
    fn.block_by_start[block.start] = block.id;
    fn.blocks.push_back(std::move(block));
  }
  for (const auto& [from, to] : edges) {
    fn.blocks[from].successors.push_back({to, EdgeKind::kTaken});
    fn.blocks[to].predecessors.push_back(from);
  }
  return fn;
}

TEST(Dominators, UnreachableBlockDominatedByNothing) {
  // 0 -> 1 -> 3, with 2 -> 3 where block 2 has no path from the entry.
  Function fn = make_fn(4, {{0, 1}, {1, 3}, {2, 3}});
  Dominators dom(fn);
  EXPECT_EQ(dom.idom(2), kNoBlock);
  EXPECT_FALSE(dom.dominates(0, 2));
  EXPECT_FALSE(dom.dominates(2, 3));  // the unreachable pred must not count
  EXPECT_EQ(dom.idom(3), 1u);
  // RPO covers only the reachable part.
  EXPECT_EQ(dom.reverse_post_order().size(), 3u);
}

TEST(Dominators, UnreachableCycleDoesNotPerturbIdoms) {
  // Reachable diamond 0 -> {1, 2} -> 3 plus an unreachable cycle 4 <-> 5
  // with an edge 5 -> 3 into the join.
  Function fn = make_fn(
      6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {4, 5}, {5, 4}, {5, 3}});
  Dominators dom(fn);
  EXPECT_EQ(dom.idom(3), 0u);
  EXPECT_TRUE(dom.dominates(0, 3));
  EXPECT_EQ(dom.idom(4), kNoBlock);
  EXPECT_EQ(dom.idom(5), kNoBlock);
}

TEST(Loops, BackEdgeFromUnreachableBlockIgnored) {
  // 3 -> 1 looks like a latch, but 3 is unreachable, so 1 heads no loop.
  Function fn = make_fn(4, {{0, 1}, {1, 2}, {3, 1}});
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, {});
  ASSERT_TRUE(forest.ok()) << forest.error().to_string();
  EXPECT_TRUE(forest->loops.empty());
}

TEST(Loops, MultiLatchLoopMergesIntoOne) {
  // Two back edges into the same header (a loop with a `continue` path)
  // must yield ONE loop containing both latches.
  auto cfg = build_ok(R"(
    li t0, 10
loop:
    .loopbound 10
    addi t0, t0, -1
    andi t1, t0, 1
    beqz t1, even
    bnez t0, loop
    j done
even:
    bnez t0, loop
done:
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok()) << forest.error().to_string();
  ASSERT_EQ(forest->loops.size(), 1u);
  const Loop& loop = forest->loops[0];
  EXPECT_EQ(loop.back_sources.size(), 2u);
  for (BlockId latch : loop.back_sources) {
    EXPECT_TRUE(loop.contains(latch));
  }
  ASSERT_TRUE(loop.bound.has_value());
  EXPECT_EQ(*loop.bound, 10u);
}

TEST(Loops, MultiLatchDefeatsCountedPattern) {
  // Same shape without the annotation: the decrement-to-zero pattern
  // requires a single latch, so the bound must stay unresolved (not
  // silently wrong).
  auto cfg = build_ok(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    andi t1, t0, 1
    beqz t1, even
    bnez t0, loop
    j done
even:
    bnez t0, loop
done:
    ecall
  )");
  const Function& fn = cfg.entry_function();
  Dominators dom(fn);
  auto forest = find_loops(fn, dom, cfg.loop_bounds);
  ASSERT_TRUE(forest.ok()) << forest.error().to_string();
  ASSERT_EQ(forest->loops.size(), 1u);
  EXPECT_FALSE(forest->loops[0].bound.has_value());
}

}  // namespace
}  // namespace s4e::cfg
