#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/workloads.hpp"
#include "mutation/mutation.hpp"

namespace s4e::mutation {
namespace {

assembler::Program build(const std::string& source,
                         bool compress = false) {
  assembler::Options options;
  options.compress = compress;
  auto program = assembler::assemble(source, options);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().to_string());
  return *program;
}

const char* kSelfChecking = R"(
_start:
    li a1, 20
    li a2, 22
    add a3, a1, a2
    li a4, 42
    bne a3, a4, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
)";

TEST(Enumerate, ProducesLegalDistinctMutants) {
  auto program = build(kSelfChecking);
  auto mutants = enumerate_mutants(program, {});
  EXPECT_GT(mutants.size(), 20u);
  for (const Mutant& mutant : mutants) {
    EXPECT_NE(mutant.mutated, mutant.original) << mutant.description;
    EXPECT_EQ(mutant.length, 4u);
    EXPECT_FALSE(mutant.description.empty());
  }
}

TEST(Enumerate, Deterministic) {
  auto program = build(kSelfChecking);
  auto a = enumerate_mutants(program, {});
  auto b = enumerate_mutants(program, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mutated, b[i].mutated);
    EXPECT_EQ(a[i].address, b[i].address);
  }
}

TEST(Enumerate, ExecutedFilterRestricts) {
  auto program = build(kSelfChecking);
  auto all = enumerate_mutants(program, {});
  const u32 text_base = program.find_section(".text")->base;
  auto only_first = enumerate_mutants(program, {text_base});
  EXPECT_LT(only_first.size(), all.size());
  for (const Mutant& mutant : only_first) {
    EXPECT_EQ(mutant.address, text_base);
  }
}

TEST(Enumerate, CoversAllOperatorClasses) {
  auto program = build(kSelfChecking);
  auto mutants = enumerate_mutants(program, {});
  bool saw[3] = {false, false, false};
  for (const Mutant& mutant : mutants) {
    saw[static_cast<unsigned>(mutant.op)] = true;
  }
  EXPECT_TRUE(saw[0]);  // opcode substitution
  EXPECT_TRUE(saw[1]);  // register replacement
  EXPECT_TRUE(saw[2]);  // immediate perturbation
}

TEST(Enumerate, CompressedMutantsKeepLength) {
  auto program = build(kSelfChecking, /*compress=*/true);
  auto mutants = enumerate_mutants(program, {});
  bool saw_short = false;
  for (const Mutant& mutant : mutants) {
    if (mutant.length == 2) {
      saw_short = true;
      EXPECT_LE(mutant.mutated, 0xffffu);
    }
  }
  EXPECT_TRUE(saw_short);
}

TEST(Campaign, SelfCheckingProgramKillsMostMutants) {
  MutationConfig config;
  MutationCampaign campaign(build(kSelfChecking), config);
  auto score = campaign.run();
  ASSERT_TRUE(score.ok()) << score.error().to_string();
  EXPECT_GT(score->results.size(), 20u);
  // The add feeds a checked compare: most data-path mutants must be caught.
  EXPECT_GT(score->score(), 0.5);
  // And some survive (e.g. mutations in the already-failed path).
  EXPECT_GT(score->count(Verdict::kSurvived), 0u);
  u64 total = 0;
  for (unsigned i = 0; i < 4; ++i) total += score->verdict_counts[i];
  EXPECT_EQ(total, score->results.size());
}

TEST(Campaign, UncheckedProgramLetsMutantsSurvive) {
  // Same computation but the result is discarded: only crashes/hangs kill.
  const char* kUnchecked = R"(
_start:
    li a1, 20
    li a2, 22
    add a3, a1, a2
    li a0, 0
    li a7, 93
    ecall
)";
  MutationConfig config;
  MutationCampaign checked(build(kSelfChecking), config);
  MutationCampaign unchecked(build(kUnchecked), config);
  auto checked_score = checked.run();
  auto unchecked_score = unchecked.run();
  ASSERT_TRUE(checked_score.ok() && unchecked_score.ok());
  EXPECT_LT(unchecked_score->score(), checked_score->score());
}

TEST(Campaign, MaxMutantsCap) {
  MutationConfig config;
  config.max_mutants = 5;
  MutationCampaign campaign(build(kSelfChecking), config);
  auto score = campaign.run();
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(score->results.size(), 5u);
}

TEST(Campaign, ReportContainsBreakdown) {
  MutationConfig config;
  config.max_mutants = 30;
  MutationCampaign campaign(build(kSelfChecking), config);
  auto score = campaign.run();
  ASSERT_TRUE(score.ok());
  const std::string text = score->to_string();
  EXPECT_NE(text.find("mutants"), std::string::npos);
  EXPECT_NE(text.find("opcode-subst"), std::string::npos);
  EXPECT_NE(text.find("SURVIVED"), std::string::npos);
}

TEST(Campaign, WorkloadSmoke) {
  auto workload = core::find_workload("crc32");
  ASSERT_TRUE(workload.ok());
  MutationConfig config;
  config.max_mutants = 120;
  MutationCampaign campaign(build(workload->source), config);
  auto score = campaign.run();
  ASSERT_TRUE(score.ok()) << score.error().to_string();
  // CRC with a golden check value is a strong oracle.
  EXPECT_GT(score->score(), 0.6);
}

}  // namespace
}  // namespace s4e::mutation
