// Multi-hart SMP suite (ctest -L smp; tsan-matched via the combined
// "smp-tsan" label):
//   * the determinism contract: --harts 1 under the forced slice scheduler
//     is bit-identical to the legacy single-hart engine on torture programs,
//     and multi-hart runs are bit-reproducible run to run
//   * RV32A semantics: AMO read-modify-write values, SC without a
//     reservation, cross-hart reservation invalidation, misaligned traps
//   * the SMP workloads (smp_spinlock / smp_msgpass) on 1/2/4 harts
//   * CLINT per-hart banks: msip delivery to a specific hart, a timer on
//     hart 1 while hart 0 spins uninterruptible, bank reset/save/restore
//   * snapshot save/restore covering every hart mid-run
//   * fault campaigns on SMP machines: byte-identical across jobs x reuse,
//     hart-targeted GPR faults, triage forced off
//   * the GDB stub's multi-thread RSP surface (thread info, Hg switching,
//     per-hart stop attribution) and its single-hart byte-compatibility
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/hex.hpp"
#include "core/workloads.hpp"
#include "debug/rsp.hpp"
#include "debug/server.hpp"
#include "debug/target.hpp"
#include "fault/fault.hpp"
#include "testgen/testgen.hpp"
#include "vp/machine.hpp"
#include "vp/runner.hpp"
#include "vp/snapshot.hpp"

namespace s4e {
namespace {

using vp::Machine;
using vp::MachineConfig;
using vp::RunResult;
using vp::StopReason;

assembler::Program assemble_or_die(const std::string& source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok())
      << (program.ok() ? "" : program.error().to_string());
  return *program;
}

assembler::Program workload_program(const std::string& name) {
  auto workload = core::find_workload(name);
  EXPECT_TRUE(workload.ok()) << name;
  return assemble_or_die(workload->source);
}

u32 symbol(const assembler::Program& program, const std::string& name) {
  auto it = program.symbols.find(name);
  EXPECT_NE(it, program.symbols.end()) << name;
  return it == program.symbols.end() ? 0 : it->second;
}

// A short slice quantum forces real cross-hart interleaving on the small
// test workloads (with the default 4096-instruction quantum, hart 0 often
// finishes inside its first slice).
MachineConfig smp_config(unsigned harts, u64 quantum = 64) {
  MachineConfig config;
  config.num_harts = harts;
  config.smp_slice_quantum = quantum;
  config.max_instructions = 4'000'000;
  return config;
}

// --------------------------------------------------------------------------
// Determinism contract.

class SmpTortureSeed : public ::testing::TestWithParam<u64> {};

// The tentpole invariant: a single-hart machine with the slice scheduler
// forced on retires the same instructions, cycles, registers and memory as
// the legacy direct-dispatch engine. Slice boundaries only change where
// translation blocks split, which is architecturally invisible.
TEST_P(SmpTortureSeed, ForcedSchedulerSingleHartBitIdentical) {
  testgen::TortureConfig torture;
  torture.seed = GetParam();
  torture.programs = 3;
  for (const auto& test : testgen::torture_suite(torture)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    Machine legacy;
    ASSERT_TRUE(legacy.load_program(*program).ok());
    const RunResult legacy_result = legacy.run();

    MachineConfig forced_config;
    forced_config.force_slice_scheduler = true;
    forced_config.smp_slice_quantum = 97;  // deliberately odd slice length
    Machine forced(forced_config);
    ASSERT_TRUE(forced.load_program(*program).ok());
    const RunResult forced_result = forced.run();

    EXPECT_EQ(legacy_result.reason, forced_result.reason) << test.name;
    EXPECT_EQ(legacy_result.exit_code, forced_result.exit_code) << test.name;
    EXPECT_EQ(legacy_result.instructions, forced_result.instructions)
        << test.name;
    EXPECT_EQ(legacy_result.cycles, forced_result.cycles) << test.name;
    EXPECT_EQ(legacy_result.final_pc, forced_result.final_pc) << test.name;
    for (unsigned reg = 0; reg < isa::kGprCount; ++reg) {
      EXPECT_EQ(legacy.cpu().read_gpr(reg), forced.cpu().read_gpr(reg))
          << test.name << " x" << reg;
    }
    EXPECT_EQ(vp::data_memory_hash(legacy, *program),
              vp::data_memory_hash(forced, *program))
        << test.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmpTortureSeed,
                         ::testing::Values(7u, 21u, 42u));

class SmpHartCount : public ::testing::TestWithParam<unsigned> {};

// Fixed quantum => the cross-hart interleaving is a pure function of the
// program, so two runs of the same SMP configuration are bit-identical.
TEST_P(SmpHartCount, MultiHartRunToRunDeterministic) {
  for (const char* name : {"smp_spinlock", "smp_msgpass"}) {
    const assembler::Program program = workload_program(name);
    Machine first(smp_config(GetParam()));
    Machine second(smp_config(GetParam()));
    ASSERT_TRUE(first.load_program(program).ok());
    ASSERT_TRUE(second.load_program(program).ok());
    const RunResult a = first.run();
    const RunResult b = second.run();

    EXPECT_EQ(a.reason, StopReason::kExitEcall) << name;
    EXPECT_EQ(a.reason, b.reason) << name;
    EXPECT_EQ(a.exit_code, 0) << name;
    EXPECT_EQ(a.exit_code, b.exit_code) << name;
    EXPECT_EQ(a.instructions, b.instructions) << name;
    EXPECT_EQ(a.cycles, b.cycles) << name;
    EXPECT_EQ(a.hart, b.hart) << name;
    for (unsigned hart = 0; hart < GetParam(); ++hart) {
      EXPECT_EQ(first.hart_icount(hart), second.hart_icount(hart))
          << name << " hart " << hart;
      EXPECT_EQ(first.cpu(hart).pc, second.cpu(hart).pc)
          << name << " hart " << hart;
    }
    EXPECT_EQ(vp::data_memory_hash(first, program),
              vp::data_memory_hash(second, program))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Harts, SmpHartCount, ::testing::Values(2u, 4u));

// Per-hart retirement counters partition the global instruction count.
TEST(SmpStats, PerHartIcountSumsToGlobal) {
  const assembler::Program program = workload_program("smp_spinlock");
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine.load_program(program).ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.hart, 0u);  // hart 0 owns the exit path

  u64 total = 0;
  for (unsigned hart = 0; hart < machine.num_harts(); ++hart) {
    EXPECT_GT(machine.hart_icount(hart), 0u) << "hart " << hart;
    total += machine.hart_icount(hart);
  }
  EXPECT_EQ(total, result.instructions);
}

// --------------------------------------------------------------------------
// RV32A semantics.

TEST(SmpAtomics, AmoReadModifyWriteValues) {
  Machine machine;
  ASSERT_TRUE(machine
                  .load_program(assemble_or_die(R"(
_start:
    la s0, word
    li t0, 10
    sw t0, 0(s0)
    li t1, 3
    amoadd.w t2, t1, (s0)
    li t3, 10
    bne t2, t3, bad
    li t1, -1
    amomin.w t2, t1, (s0)
    li t3, 13
    bne t2, t3, bad
    li t1, 5
    amomaxu.w t2, t1, (s0)
    li t3, -1
    bne t2, t3, bad
    lw t4, 0(s0)
    bne t4, t3, bad
    li t1, 0x0f0
    amoand.w t2, t1, (s0)
    li t1, 0x00f
    amoor.w t2, t1, (s0)
    li t3, 0x0f0
    bne t2, t3, bad
    lw t4, 0(s0)
    li t3, 0xff
    bne t4, t3, bad
    li t1, 0xff
    amoxor.w t2, t1, (s0)
    li t1, 77
    amoswap.w t2, t1, (s0)
    bnez t2, bad
    lw t4, 0(s0)
    li t3, 77
    bne t4, t3, bad
    li a0, 0
    li a7, 93
    ecall
bad:
    li a0, 1
    li a7, 93
    ecall
.data
word:
    .word 0
)"))
                  .ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(SmpAtomics, ScWithoutReservationFails) {
  Machine machine;
  ASSERT_TRUE(machine
                  .load_program(assemble_or_die(R"(
_start:
    la s0, word
    li t1, 5
    sc.w t2, t1, (s0)
    bnez t2, ok         # rd = 1: SC failed, as required
    li a0, 1
    li a7, 93
    ecall
ok:
    lw t3, 0(s0)        # the failed SC must not have written
    bnez t3, badmem
    li a0, 0
    li a7, 93
    ecall
badmem:
    li a0, 2
    li a7, 93
    ecall
.data
word:
    .word 0
)"))
                  .ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall);
  EXPECT_EQ(result.exit_code, 0);
}

// Hart 1 stores to the word hart 0 holds a reservation on; hart 0's SC must
// fail and hart 1's value must be the one left in memory.
TEST(SmpAtomics, RemoteStoreClearsReservation) {
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine
                  .load_program(assemble_or_die(R"(
_start:
    csrr t0, mhartid
    la s0, shared
    la s1, flag0
    la s2, flag1
    bnez t0, hart1
    lr.w t1, (s0)
    li t2, 1
    sw t2, 0(s1)
wait1:
    lw t3, 0(s2)
    beqz t3, wait1
    li t4, 99
    sc.w t5, t4, (s0)
    beqz t5, bad
    lw t6, 0(s0)
    li t2, 7
    bne t6, t2, bad
    li a0, 0
    li a7, 93
    ecall
bad:
    li a0, 1
    li a7, 93
    ecall
hart1:
wait0:
    lw t3, 0(s1)
    beqz t3, wait0
    li t4, 7
    sw t4, 0(s0)
    li t5, 1
    sw t5, 0(s2)
park:
    wfi
    j park
.data
shared:
    .word 0
flag0:
    .word 0
flag1:
    .word 0
)"))
                  .ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall) << result.detail;
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.hart, 0u);
}

TEST(SmpAtomics, MisalignedAtomicsTrapWithPreciseCause) {
  // AMO / SC misalignment reports cause 6 (store/AMO address misaligned),
  // LR reports cause 4 (load address misaligned).
  const auto run_to_mcause = [](const char* body) {
    Machine machine;
    std::string source = R"(
_start:
    la t0, handler
    csrw mtvec, t0
    la s0, word
    addi s1, s0, 2
)";
    source += body;
    source += R"(
    li a0, 99
    li a7, 93
    ecall
handler:
    csrr a0, mcause
    li a7, 93
    ecall
.data
word:
    .word 0
)";
    EXPECT_TRUE(machine.load_program(assemble_or_die(source)).ok());
    const RunResult result = machine.run();
    EXPECT_EQ(result.reason, StopReason::kExitEcall);
    return result.exit_code;
  };
  EXPECT_EQ(run_to_mcause("    li t1, 1\n    amoadd.w t2, t1, (s1)\n"), 6);
  EXPECT_EQ(run_to_mcause("    li t1, 1\n    sc.w t2, t1, (s1)\n"), 6);
  EXPECT_EQ(run_to_mcause("    lr.w t2, (s1)\n"), 4);
}

// --------------------------------------------------------------------------
// SMP workloads.

TEST(SmpWorkloads, SpinlockRunsOnAnyHartCount) {
  const assembler::Program program = workload_program("smp_spinlock");
  const u32 counter = symbol(program, "counter");
  for (unsigned harts : {1u, 2u, 4u}) {
    Machine machine(smp_config(harts));
    ASSERT_TRUE(machine.load_program(program).ok());
    const RunResult result = machine.run();
    ASSERT_EQ(result.reason, StopReason::kExitEcall) << harts << " harts";
    EXPECT_EQ(result.exit_code, 0) << harts << " harts";
    u32 value = 0;
    ASSERT_TRUE(machine.bus().ram_read(counter, &value, 4).ok());
    // Hart 0's 64 increments always land; other harts add at most 64 each
    // before the exit stops the machine.
    EXPECT_GE(value, 64u) << harts << " harts";
    EXPECT_LE(value, 64u * harts) << harts << " harts";
    if (harts > 1) {
      EXPECT_GT(machine.hart_icount(1), 0u);  // hart 1 really ran
    }
  }
}

TEST(SmpWorkloads, MsgpassTicketsStayUnique) {
  const assembler::Program program = workload_program("smp_msgpass");
  const u32 ticket = symbol(program, "ticket");
  for (unsigned harts : {1u, 2u, 4u}) {
    Machine machine(smp_config(harts));
    ASSERT_TRUE(machine.load_program(program).ok());
    const RunResult result = machine.run();
    ASSERT_EQ(result.reason, StopReason::kExitEcall) << harts << " harts";
    EXPECT_EQ(result.exit_code, 0) << harts << " harts";
    u32 handed_out = 0;
    ASSERT_TRUE(machine.bus().ram_read(ticket, &handed_out, 4).ok());
    EXPECT_GE(handed_out, 16u) << harts << " harts";
    EXPECT_LE(handed_out, 16u * harts) << harts << " harts";
  }
}

// --------------------------------------------------------------------------
// CLINT per-hart banks.

TEST(SmpClint, MsipDeliversToTheAddressedHart) {
  // Hart 0 raises msip[1] and spins; only hart 1 may take the software
  // interrupt (its handler exits with 40 + mhartid).
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine
                  .load_program(assemble_or_die(R"(
.equ CLINT, 0x2000000
_start:
    la t0, handler
    csrw mtvec, t0
    li t1, 8            # MSIE
    csrw mie, t1
    csrsi mstatus, 8    # MIE
    csrr t2, mhartid
    bnez t2, wait
    li t3, CLINT
    li t4, 1
    sw t4, 4(t3)        # msip[1]
spin0:
    j spin0
wait:
    wfi
    j wait
handler:
    csrr a0, mhartid
    addi a0, a0, 40
    li a7, 93
    ecall
)"))
                  .ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall) << result.detail;
  EXPECT_EQ(result.exit_code, 41);  // hart 1, not hart 0
  EXPECT_EQ(result.hart, 1u);
}

TEST(SmpClint, TimerFiresOnHartOneWhileHartZeroSpins) {
  // Hart 1 programs its own mtimecmp bank and sleeps; hart 0 runs with all
  // interrupts disabled. The timer must wake hart 1 only.
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine
                  .load_program(assemble_or_die(R"(
.equ CLINT, 0x2000000
_start:
    la t0, handler
    csrw mtvec, t0
    csrr t2, mhartid
    beqz t2, spin0
    li t3, CLINT
    li t5, 0x4000
    add t3, t3, t5
    slli t6, t2, 3
    add t3, t3, t6      # &mtimecmp[mhartid]
    li t4, 500
    sw t4, 0(t3)
    sw zero, 4(t3)
    li t1, 128          # MTIE
    csrw mie, t1
    csrsi mstatus, 8
wait:
    wfi
    j wait
spin0:
    j spin0
handler:
    csrr a0, mhartid
    addi a0, a0, 40
    li a7, 93
    ecall
)"))
                  .ok());
  const RunResult result = machine.run();
  ASSERT_EQ(result.reason, StopReason::kExitEcall) << result.detail;
  EXPECT_EQ(result.exit_code, 41);
  EXPECT_EQ(result.hart, 1u);
}

TEST(SmpClint, BankedRegistersResetAndRoundTrip) {
  vp::Clint clint;
  // Per-hart addressing: msip[h] at 4*h, mtimecmp[h] at 0x4000 + 8*h.
  ASSERT_TRUE(clint.write(vp::Clint::kMsipBase + 4 * 3, 4, 1).ok());
  ASSERT_TRUE(clint.write(vp::Clint::kMtimecmpBase + 8 * 2, 4, 1234).ok());
  ASSERT_TRUE(clint.write(vp::Clint::kMtimecmpBase + 8 * 2 + 4, 4, 0).ok());
  EXPECT_TRUE(clint.software_pending(3));
  EXPECT_FALSE(clint.software_pending(0));
  EXPECT_EQ(clint.mtimecmp(2), 1234u);
  clint.tick(2000);
  EXPECT_TRUE(clint.timer_pending(2));
  EXPECT_FALSE(clint.timer_pending(0));  // hart 0's bank still ~0

  vp::StateWriter writer;
  clint.save_state(writer);
  const std::vector<u8> saved = std::move(writer).take();

  clint.reset();
  EXPECT_FALSE(clint.software_pending(3));
  EXPECT_FALSE(clint.timer_pending(2));
  EXPECT_EQ(clint.mtime(), 0u);

  vp::StateReader reader(saved);
  clint.restore_state(reader);
  EXPECT_TRUE(clint.software_pending(3));
  EXPECT_EQ(clint.mtimecmp(2), 1234u);
  EXPECT_EQ(clint.mtime(), 2000u);
  EXPECT_TRUE(clint.timer_pending(2));
}

// --------------------------------------------------------------------------
// Snapshot.

TEST(SmpSnapshot, SaveRestoreRoundTripsEveryHart) {
  const assembler::Program program = workload_program("smp_msgpass");
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine.load_program(program).ok());

  // Advance past the fan-out point so both harts hold divergent state (and
  // lr/sc traffic has happened), then snapshot. 400 global instructions is
  // ~200 per hart under the 64-instruction quantum — well short of exit.
  const RunResult partial = machine.run_slice(400);
  ASSERT_EQ(partial.reason, StopReason::kDebugSlice);
  vp::Snapshot snap;
  machine.save_state(snap);
  ASSERT_EQ(snap.harts.size(), 2u);

  const RunResult first = machine.run();
  ASSERT_EQ(first.reason, StopReason::kExitEcall);
  const u64 first_hash = vp::data_memory_hash(machine, program);
  const u32 first_pc1 = machine.cpu(1).pc;

  machine.restore_state(snap);
  EXPECT_EQ(machine.active_hart(), snap.active_hart);
  const RunResult second = machine.run();
  EXPECT_EQ(second.reason, first.reason);
  EXPECT_EQ(second.exit_code, first.exit_code);
  EXPECT_EQ(second.instructions, first.instructions);
  EXPECT_EQ(second.cycles, first.cycles);
  EXPECT_EQ(second.hart, first.hart);
  EXPECT_EQ(machine.cpu(1).pc, first_pc1);
  EXPECT_EQ(vp::data_memory_hash(machine, program), first_hash);
}

// --------------------------------------------------------------------------
// Fault campaigns on SMP machines.

fault::CampaignConfig smp_campaign_config() {
  fault::CampaignConfig config;
  config.seed = 7;
  config.mutant_count = 24;
  config.machine = smp_config(2, 101);
  return config;
}

TEST(SmpCampaign, ByteIdenticalAcrossJobsAndReuse) {
  const assembler::Program program = workload_program("smp_spinlock");

  fault::CampaignConfig serial = smp_campaign_config();
  serial.jobs = 1;
  serial.reuse_machines = false;
  fault::Campaign serial_campaign(program, serial);
  auto serial_result = serial_campaign.run();
  ASSERT_TRUE(serial_result.ok()) << serial_result.error().to_string();

  fault::CampaignConfig parallel = smp_campaign_config();
  parallel.jobs = 4;
  parallel.reuse_machines = true;
  fault::Campaign parallel_campaign(program, parallel);
  auto parallel_result = parallel_campaign.run();
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.error().to_string();

  EXPECT_EQ(serial_result->golden_exit_code, 0);
  EXPECT_EQ(serial_result->golden_exit_code,
            parallel_result->golden_exit_code);
  EXPECT_EQ(serial_result->golden_instructions,
            parallel_result->golden_instructions);
  EXPECT_EQ(serial_result->golden_memory_hash,
            parallel_result->golden_memory_hash);
  ASSERT_EQ(serial_result->mutants.size(), parallel_result->mutants.size());
  for (std::size_t i = 0; i < serial_result->mutants.size(); ++i) {
    EXPECT_EQ(serial_result->mutants[i].outcome,
              parallel_result->mutants[i].outcome)
        << "#" << i;
    EXPECT_EQ(serial_result->mutants[i].exit_code,
              parallel_result->mutants[i].exit_code)
        << "#" << i;
    EXPECT_EQ(serial_result->mutants[i].instructions,
              parallel_result->mutants[i].instructions)
        << "#" << i;
  }
}

TEST(SmpCampaign, GprFaultsTargetDrawnHarts) {
  const assembler::Program program = workload_program("smp_spinlock");
  fault::CampaignConfig config = smp_campaign_config();
  config.mutant_count = 60;
  config.jobs = 1;
  fault::Campaign campaign(program, config);
  auto result = campaign.run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  unsigned hart1_gpr = 0;
  for (const fault::FaultSpec& spec : campaign.fault_list()) {
    EXPECT_LT(spec.hart, 2u);
    if (spec.target != fault::FaultTarget::kGpr) {
      EXPECT_EQ(spec.hart, 0u);  // only GPR faults carry a hart
      continue;
    }
    if (spec.hart == 1) {
      ++hart1_gpr;
      EXPECT_NE(spec.to_string().find("@hart1"), std::string::npos);
    } else {
      EXPECT_EQ(spec.to_string().find("@hart"), std::string::npos);
    }
  }
  EXPECT_GT(hart1_gpr, 0u);  // 60 draws over 2 harts: hart 1 must appear
}

TEST(SmpCampaign, TriageForcedOffOnSmpMachines) {
  const assembler::Program program = workload_program("smp_spinlock");
  fault::CampaignConfig config = smp_campaign_config();
  config.jobs = 1;
  config.triage = dataflow::TriageMode::kOn;  // must be ignored for 2 harts
  fault::Campaign campaign(program, config);
  auto result = campaign.run();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->pruned_count, 0u);
}

// --------------------------------------------------------------------------
// Multi-thread RSP surface.

// Scripted ByteChannel (same shape as the debug suite's): pre-recorded
// client chunks in, transcript out.
class ScriptChannel final : public debug::ByteChannel {
 public:
  void push(std::string bytes) { script_.push_back(std::move(bytes)); }

  std::string read_blocking() override {
    if (next_ >= script_.size()) return {};
    return script_[next_++];
  }
  std::string read_poll() override { return {}; }
  bool write_all(std::string_view bytes) override {
    transcript_.append(bytes);
    return true;
  }

  std::vector<std::string> replies() const {
    debug::PacketDecoder decoder;
    decoder.feed(transcript_);
    std::vector<std::string> out;
    while (decoder.has_event()) {
      auto event = decoder.next_event();
      if (event.kind == debug::PacketDecoder::EventKind::kPacket) {
        out.push_back(debug::rsp_rle_expand(event.payload));
      }
    }
    return out;
  }

 private:
  std::vector<std::string> script_;
  std::size_t next_ = 0;
  std::string transcript_;
};

constexpr const char* kHartSplitSource = R"(
_start:
    csrr t0, mhartid
    bnez t0, h1
h0:
    j h0
h1:
    nop
    nop
park:
    wfi
    j park
)";

TEST(SmpDebug, ThreadInfoAndHgSwitching) {
  const assembler::Program program = assemble_or_die(kHartSplitSource);
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine.load_program(program).ok());
  // A marker value in hart 1's t0 distinguishes the two register files.
  machine.cpu(1).write_gpr(5, 0xdeadbeef);

  ScriptChannel channel;
  channel.push(debug::rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(debug::rsp_frame("qC"));
  channel.push(debug::rsp_frame("qfThreadInfo"));
  channel.push(debug::rsp_frame("qsThreadInfo"));
  channel.push(debug::rsp_frame("Hg2"));
  channel.push(debug::rsp_frame("g"));
  channel.push(debug::rsp_frame("T2"));
  channel.push(debug::rsp_frame("T5"));
  channel.push(debug::rsp_frame("Hg9"));
  channel.push(debug::rsp_frame("k"));

  debug::DebugTarget target(machine);
  debug::RspServer server(target, channel);
  EXPECT_EQ(server.serve(), debug::RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 9u);
  EXPECT_EQ(replies[0], "OK");      // QStartNoAckMode
  EXPECT_EQ(replies[1], "QC1");     // current thread = hart 0
  EXPECT_EQ(replies[2], "m1,2");    // both harts listed
  EXPECT_EQ(replies[3], "l");       // end of list
  EXPECT_EQ(replies[4], "OK");      // Hg2
  // `g` after Hg2 reads hart 1's registers: t0 (x5) carries the marker.
  ASSERT_EQ(replies[5].size(), 33u * 8u);
  EXPECT_EQ(replies[5].substr(5 * 8, 8), hex32_le(0xdeadbeef));
  EXPECT_EQ(replies[6], "OK");      // T2: thread alive
  EXPECT_EQ(replies[7], "E01");     // T5: no such thread
  EXPECT_EQ(replies[8], "E01");     // Hg9: no such thread
}

TEST(SmpDebug, BreakpointStopNamesTheStoppingHart) {
  const assembler::Program program = assemble_or_die(kHartSplitSource);
  Machine machine(smp_config(2));
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 h1 = symbol(program, "h1");

  ScriptChannel channel;
  channel.push(debug::rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(debug::rsp_frame("?"));
  channel.push(debug::rsp_frame("Z0," + hex32(h1) + ",4"));
  channel.push(debug::rsp_frame("c"));
  channel.push(debug::rsp_frame("qC"));
  channel.push(debug::rsp_frame("k"));

  debug::DebugTarget target(machine);
  debug::RspServer server(target, channel);
  EXPECT_EQ(server.serve(), debug::RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 5u);
  // Initial halt is attributed to hart 0; only hart 1 reaches h1, so the
  // breakpoint stop carries thread 2. qC still reports the Hg selection
  // (thread 1), which is the protocol's contract — stop attribution and
  // register-context selection are independent.
  EXPECT_EQ(replies[1], "T05thread:1;");
  EXPECT_EQ(replies[2], "OK");
  EXPECT_EQ(replies[3], "T05swbreak:;thread:2;");
  EXPECT_EQ(replies[4], "QC1");
  EXPECT_EQ(machine.cpu(1).pc, h1);
}

TEST(SmpDebug, SingleHartSessionKeepsLegacyReplies) {
  const assembler::Program program = assemble_or_die(kHartSplitSource);
  Machine machine;  // one hart: the multi-thread surface must stay silent
  ASSERT_TRUE(machine.load_program(program).ok());

  ScriptChannel channel;
  channel.push(debug::rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(debug::rsp_frame("?"));
  channel.push(debug::rsp_frame("qC"));
  channel.push(debug::rsp_frame("qfThreadInfo"));
  channel.push(debug::rsp_frame("s"));
  channel.push(debug::rsp_frame("k"));

  debug::DebugTarget target(machine);
  debug::RspServer server(target, channel);
  EXPECT_EQ(server.serve(), debug::RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[1], "S05");  // no thread annotation
  EXPECT_EQ(replies[2], "");     // qC unsupported, exactly as before
  EXPECT_EQ(replies[3], "");     // qfThreadInfo unsupported
  EXPECT_EQ(replies[4], "S05");  // step reply unchanged
}

}  // namespace
}  // namespace s4e
