# Empty compiler generated dependencies file for bench_coverage_suites.
# This may be replaced when dependencies are built.
