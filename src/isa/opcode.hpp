// RV32IM_Zicsr instruction enumeration and static metadata.
//
// This mirrors QEMU's DecodeTree approach in spirit: every instruction is a
// row in a declarative table (mnemonic, format, match/mask pattern, class),
// and both the decoder and the encoder are derived from that single table, so
// they cannot drift apart. The coverage metric (MBMV'21) counts executed
// instruction *types*, i.e. entries of this enum.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bits.hpp"

namespace s4e::isa {

// Every supported instruction type. Order is stable; coverage bitmaps and
// campaign reports index by this value.
enum class Op : u8 {
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi,
  kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // Zicsr
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // Privileged
  kMret, kWfi,
  // RV32A (Zalrsc + Zaamo)
  kLrW, kScW,
  kAmoswapW, kAmoaddW, kAmoxorW, kAmoorW, kAmoandW,
  kAmominW, kAmomaxW, kAmominuW, kAmomaxuW,
  kCount,
};

inline constexpr unsigned kOpCount = static_cast<unsigned>(Op::kCount);

// Operand/immediate layout of the 32-bit encoding.
enum class Format : u8 {
  kR,        // rd, rs1, rs2
  kI,        // rd, rs1, imm12
  kIShift,   // rd, rs1, shamt5
  kS,        // rs1, rs2, imm12 (store)
  kB,        // rs1, rs2, imm13 (branch, <<1)
  kU,        // rd, imm20 (<<12)
  kJ,        // rd, imm21 (<<1)
  kCsrReg,   // rd, csr, rs1
  kCsrImm,   // rd, csr, uimm5
  kNone,     // ecall/ebreak/mret/wfi
  kFence,    // pred/succ (treated as hint)
};

// Behavioural class; drives the timing model, the coverage report grouping,
// and the fault-campaign outcome analysis.
enum class OpClass : u8 {
  kArith,    // register/immediate ALU
  kLoad,
  kStore,
  kBranch,   // conditional
  kJump,     // jal/jalr
  kMul,
  kDiv,
  kCsr,
  kSystem,   // ecall/ebreak/mret/wfi
  kFence,
  kAmo,      // lr/sc and read-modify-write atomics
  kCount,
};

inline constexpr unsigned kOpClassCount = static_cast<unsigned>(OpClass::kCount);

// Which ISA module (extension) an instruction belongs to; the coverage
// report breaks results down per module, as in the MBMV'21 metric.
enum class IsaModule : u8 { kI, kM, kA, kZicsr, kPriv, kCount };

// Static description of one instruction type.
struct OpInfo {
  Op op;
  std::string_view mnemonic;
  Format format;
  OpClass op_class;
  IsaModule module;
  u32 match;  // fixed bits of the encoding
  u32 mask;   // which bits are fixed
  bool reads_rs1;
  bool reads_rs2;
  bool writes_rd;
};

// Metadata row for `op`. Precondition: op != Op::kCount.
const OpInfo& op_info(Op op) noexcept;

// Mnemonic ("addi", ...). Precondition: op != Op::kCount.
std::string_view mnemonic(Op op) noexcept;

// Human-readable class name ("arith", "load", ...).
std::string_view op_class_name(OpClass c) noexcept;

// Human-readable module name ("RV32I", "RV32M", "Zicsr", "priv").
std::string_view isa_module_name(IsaModule m) noexcept;

// All rows, in Op order (span over the static table).
const OpInfo* op_table() noexcept;

}  // namespace s4e::isa
