// Line-oriented merge of bench results into one flat JSON report file.
//
// bench_fault_campaign and bench_mutation both contribute an entry to
// BENCH_campaign.json; whichever runs later must not clobber the other's
// entry. The file format is deliberately rigid — one `"key": {...}` object
// per line inside a single top-level object — so merging is a line replace,
// not a JSON parse.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace s4e::bench {

// Insert or replace the `key` entry in the report at `path`, preserving the
// other entries and their order. `object_json` must be a one-line JSON value
// (typically an object). Returns false (and reports on stderr) when the
// report file cannot be opened or fully written — a silently missing report
// entry looks exactly like a bench that was never run.
//
// The write is crash-safe: the merged report goes to a sibling temp file
// which replaces `path` with one atomic rename(2). A bench or campaign
// worker killed mid-write can therefore never leave a truncated JSON behind
// to poison the next line-merge — readers see either the old report or the
// new one, never a half-written hybrid.
inline bool merge_bench_entry(const std::string& path, const std::string& key,
                              const std::string& object_json) {
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto open_quote = line.find('"');
      if (open_quote == std::string::npos) continue;  // braces / blank lines
      const auto close_quote = line.find('"', open_quote + 1);
      const auto colon = line.find(':', close_quote);
      if (close_quote == std::string::npos || colon == std::string::npos) {
        continue;
      }
      std::string value = line.substr(colon + 1);
      while (!value.empty() && (value.front() == ' ')) value.erase(0, 1);
      while (!value.empty() &&
             (value.back() == ',' || value.back() == ' ')) {
        value.pop_back();
      }
      entries.emplace_back(
          line.substr(open_quote + 1, close_quote - open_quote - 1), value);
    }
  }
  bool replaced = false;
  for (auto& entry : entries) {
    if (entry.first == key) {
      entry.second = object_json;
      replaced = true;
    }
  }
  if (!replaced) entries.emplace_back(key, object_json);

  // Temp name is per-process so concurrent mergers (ctest -j, fleet
  // workers) never stomp each other's staging file; the rename still
  // serializes on the final path.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_report: cannot open '%s' for writing\n",
                   temp.c_str());
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << "  \"" << entries[i].first << "\": " << entries[i].second
          << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "}\n";
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "bench_report: short write to '%s'\n",
                   temp.c_str());
      std::remove(temp.c_str());
      return false;
    }
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "bench_report: cannot rename '%s' to '%s'\n",
                 temp.c_str(), path.c_str());
    std::remove(temp.c_str());
    return false;
  }
  return true;
}

// Format a double for JSON with fixed precision (locale-independent digits;
// the default precision is plenty for throughput numbers, tiny fractions
// pass a larger `decimals`).
inline std::string json_number(double value, int decimals = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

}  // namespace s4e::bench
