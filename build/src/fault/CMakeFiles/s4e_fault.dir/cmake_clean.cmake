file(REMOVE_RECURSE
  "CMakeFiles/s4e_fault.dir/fault.cpp.o"
  "CMakeFiles/s4e_fault.dir/fault.cpp.o.d"
  "libs4e_fault.a"
  "libs4e_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4e_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
