// E8 (ablation) — microarchitectural timing features vs. WCET pessimism.
//
// DESIGN.md calls out the shared timing model as the load-bearing design
// decision: hardware features that speed up the *dynamic* side (branch
// predictor) or slow both sides (icache misses) change the static bound in
// the conservative direction, so the observed <= bound chain must keep
// holding while the pessimism ratio widens — the fundamental WCET-analysis
// trade-off this table makes visible per workload.
#include <cstdio>

#include "common/strings.hpp"
#include "core/ecosystem.hpp"
#include "core/workloads.hpp"

namespace {

using namespace s4e;

struct FeatureConfig {
  const char* label;
  bool icache;
  bool bpred;
};

}  // namespace

int main() {
  const FeatureConfig configs[] = {
      {"baseline", false, false},
      {"+icache", true, false},
      {"+bpred", false, true},
      {"+both", true, true},
  };

  std::printf("[E8] timing-feature ablation: observed cycles / static bound "
              "(pessimism)\n\n");
  std::printf("%-12s", "workload");
  for (const auto& config : configs) std::printf(" %22s", config.label);
  std::printf("\n%s\n", std::string(12 + 4 * 23, '-').c_str());

  bool all_hold = true;
  for (const core::Workload& workload : core::standard_workloads()) {
    if (!workload.wcet_analyzable) continue;
    std::printf("%-12s", workload.name.c_str());
    for (const auto& feature : configs) {
      vp::MachineConfig machine_config;
      if (feature.icache) machine_config.timing.icache_miss_cycles = 12;
      machine_config.timing.branch_predictor = feature.bpred;
      core::Ecosystem ecosystem(machine_config);
      auto program = ecosystem.build(workload);
      S4E_CHECK(program.ok());
      auto outcome = ecosystem.run_qta(*program, workload.name);
      S4E_CHECK_MSG(outcome.ok(), workload.name);
      const auto& report = outcome->report;
      const bool holds = report.observed_cycles <= report.wc_path_cycles &&
                         report.wc_path_cycles <= report.static_bound;
      all_hold = all_hold && holds;
      std::printf(" %8llu/%-8llu %4.1fx",
                  static_cast<unsigned long long>(report.observed_cycles),
                  static_cast<unsigned long long>(report.static_bound),
                  static_cast<double>(report.static_bound) /
                      static_cast<double>(report.observed_cycles));
    }
    std::printf("\n");
  }

  std::printf("\nreading: the branch predictor lowers observed cycles but "
              "raises the bound\n(both branch directions may mispredict "
              "statically); the icache raises both,\nbut the static side "
              "must assume all-miss, so pessimism widens in every case.\n");
  std::printf("\n[E8] chain holds under all feature combinations: %s\n",
              all_hold ? "YES" : "NO");
  return all_hold ? 0 : 1;
}
