#include "memwatch/policy_file.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace s4e::memwatch {

namespace {

Result<u32> parse_value(std::string_view token, unsigned line_no,
                        const std::map<std::string, u32>& symbols) {
  if (!token.empty() && (std::isdigit(static_cast<unsigned char>(token[0])) ||
                         token[0] == '-' || token[0] == '+')) {
    S4E_TRY(value, parse_integer(token));
    return static_cast<u32>(value);
  }
  auto it = symbols.find(std::string(token));
  if (it == symbols.end()) {
    return Error(ErrorCode::kParseError,
                 format("policy line %u: unknown symbol '%.*s'", line_no,
                        static_cast<int>(token.size()), token.data()));
  }
  return it->second;
}

}  // namespace

Result<Policy> parse_policy(std::string_view text,
                            const std::map<std::string, u32>& symbols) {
  Policy policy;
  unsigned line_no = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const auto fields = split_whitespace(line);
    if (fields.empty()) continue;
    if (fields[0] == "default") {
      if (fields.size() != 2 ||
          (fields[1] != "allow" && fields[1] != "deny")) {
        return Error(ErrorCode::kParseError,
                     format("policy line %u: expected 'default allow|deny'",
                            line_no));
      }
      policy.default_allow = fields[1] == "allow";
      continue;
    }
    if (fields[0] != "region" || fields.size() < 4) {
      return Error(
          ErrorCode::kParseError,
          format("policy line %u: expected 'region <name> <base> <size> "
                 "[perm r|w|rw|none] [pc <lo> <hi>]'",
                 line_no));
    }
    Region region;
    region.name = std::string(fields[1]);
    S4E_TRY(base, parse_value(fields[2], line_no, symbols));
    S4E_TRY(size, parse_value(fields[3], line_no, symbols));
    region.base = base;
    region.size = size;
    std::size_t i = 4;
    while (i < fields.size()) {
      if (fields[i] == "perm" && i + 1 < fields.size()) {
        const std::string_view perm = fields[i + 1];
        region.allow_read = perm.find('r') != std::string_view::npos;
        region.allow_write = perm.find('w') != std::string_view::npos;
        if (perm != "r" && perm != "w" && perm != "rw" && perm != "none") {
          return Error(ErrorCode::kParseError,
                       format("policy line %u: bad perm '%.*s'", line_no,
                              static_cast<int>(perm.size()), perm.data()));
        }
        i += 2;
      } else if (fields[i] == "pc" && i + 2 < fields.size()) {
        S4E_TRY(lo, parse_value(fields[i + 1], line_no, symbols));
        S4E_TRY(hi, parse_value(fields[i + 2], line_no, symbols));
        region.pc_lo = lo;
        region.pc_hi = hi;
        i += 3;
      } else {
        return Error(ErrorCode::kParseError,
                     format("policy line %u: unexpected token '%.*s'", line_no,
                            static_cast<int>(fields[i].size()),
                            fields[i].data()));
      }
    }
    policy.regions.push_back(std::move(region));
  }
  return policy;
}

}  // namespace s4e::memwatch
