// E1 — VP emulation speed: block-cached execution vs pure interpretation.
//
// Reproduces the "fast and open emulation" claim (DVCON'14 / MBMV'20): the
// translation-block cache amortizes decode so cached emulation wins by a
// large factor, and absolute speed is tens-to-hundreds of guest MIPS on a
// laptop-class host. Reported counters: guest MIPS and the speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "asm/assembler.hpp"
#include "bench/bench_report.hpp"
#include "core/workloads.hpp"
#include "debug/target.hpp"
#include "vp/machine.hpp"

namespace {

using namespace s4e;

// A hot synthetic kernel: ~2M instructions of loop + ALU + memory.
const char* kHotLoop = R"(
_start:
    la t6, buf
    li t0, 100000
loop:
    lw t1, 0(t6)
    addi t1, t1, 3
    sw t1, 0(t6)
    xor t2, t1, t0
    slli t3, t2, 1
    srli t4, t3, 2
    add t5, t4, t1
    sub t5, t5, t2
    mul s2, t5, t1
    and s3, s2, t4
    or s4, s3, t3
    sltu s5, s4, t5
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    li a0, 0
    ecall
.data
buf:
    .space 16
)";

assembler::Program hot_program() {
  static const assembler::Program program = [] {
    auto result = assembler::assemble(kHotLoop);
    S4E_CHECK(result.ok());
    return *result;
  }();
  return program;
}

void run_emulation(benchmark::State& state, const vp::MachineConfig& config) {
  const assembler::Program program = hot_program();
  u64 instructions = 0;
  for (auto _ : state) {
    vp::Machine machine(config);
    S4E_CHECK(machine.load_program(program).ok());
    const vp::RunResult result = machine.run();
    S4E_CHECK(result.normal_exit());
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["guest_insns"] = static_cast<double>(instructions);
}

vp::MachineConfig cached_config() { return vp::MachineConfig{}; }

// Ablation: TB cache on, but every block returns to central dispatch (no
// chain links, no jump cache follows, no superblocks).
vp::MachineConfig nochain_config() {
  vp::MachineConfig config;
  config.enable_chaining = false;
  config.enable_superblocks = false;
  return config;
}

vp::MachineConfig interp_config() {
  vp::MachineConfig config;
  config.enable_tb_cache = false;
  return config;
}

// Two-hart SMP: both harts execute the hot kernel under the round-robin
// slice scheduler (the kernel never reads mhartid, so each hart runs the
// full loop; the first exit ecall stops the machine). Measures the
// scheduler + hart-staging overhead on top of BM_TbCached.
vp::MachineConfig smp2_config() {
  vp::MachineConfig config;
  config.num_harts = 2;
  return config;
}

void BM_TbCached(benchmark::State& state) {
  run_emulation(state, cached_config());
}
void BM_TbCachedNoChain(benchmark::State& state) {
  run_emulation(state, nochain_config());
}
void BM_PureInterpreter(benchmark::State& state) {
  run_emulation(state, interp_config());
}
void BM_TbCachedSmp2(benchmark::State& state) {
  run_emulation(state, smp2_config());
}

// Debug subsystem linked but idle: a DebugTarget exists and break/watchpoints
// were used and removed before the timed run. Must be within noise of
// BM_TbCached — breakpoints split translation blocks, so plain execution
// pays only a per-block flag check, never a per-instruction one.
void BM_TbCachedDebugIdle(benchmark::State& state) {
  const assembler::Program program = hot_program();
  u64 instructions = 0;
  for (auto _ : state) {
    vp::Machine machine;
    S4E_CHECK(machine.load_program(program).ok());
    debug::DebugTarget target(machine);
    machine.add_breakpoint(machine.cpu().pc);
    machine.add_watchpoint(0x8000'0000, 4, vp::WatchKind::kWrite);
    machine.clear_breakpoints();
    machine.clear_watchpoints();
    const vp::RunResult result = machine.run();
    S4E_CHECK(result.normal_exit());
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.cycles);
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TbCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TbCachedNoChain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TbCachedDebugIdle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PureInterpreter)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TbCachedSmp2)->Unit(benchmark::kMillisecond);

// Per-workload cached emulation speed (smaller binaries, branchier code).
void BM_Workload(benchmark::State& state, const std::string& name) {
  auto workload = core::find_workload(name);
  S4E_CHECK(workload.ok());
  auto program = assembler::assemble(workload->source);
  S4E_CHECK(program.ok());
  u64 instructions = 0;
  // Small RAM keeps VM construction cheap so short workloads measure
  // emulation, not setup.
  vp::MachineConfig config;
  config.ram_size = 256u << 10;
  for (auto _ : state) {
    vp::Machine machine(config);
    S4E_CHECK(machine.load_program(*program).ok());
    const vp::RunResult result = machine.run();
    instructions += result.instructions;
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}

void register_workload_benches() {
  for (const core::Workload& workload : core::standard_workloads()) {
    benchmark::RegisterBenchmark(
        ("BM_Workload/" + workload.name).c_str(),
        [name = workload.name](benchmark::State& state) {
          BM_Workload(state, name);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --no-report (CI smoke): run only the selected benchmarks, skip the
  // summary timing passes and leave BENCH_emulation.json untouched.
  bool write_report = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-report") {
      write_report = false;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  register_workload_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!write_report) return 0;

  // Summary for EXPERIMENTS.md and the BENCH_emulation.json trajectory:
  // cached vs uncached factor plus the chained-vs-unchained ablation.
  {
    using namespace s4e;
    const assembler::Program program = hot_program();
    auto time_run = [&](const vp::MachineConfig& config) {
      vp::Machine machine(config);
      S4E_CHECK(machine.load_program(program).ok());
      const auto start = std::chrono::steady_clock::now();
      const vp::RunResult result = machine.run();
      const auto elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      return static_cast<double>(result.instructions) / elapsed / 1e6;
    };
    const double cached = time_run(cached_config());
    const double nochain = time_run(nochain_config());
    const double uncached = time_run(interp_config());
    const double smp2 = time_run(smp2_config());
    std::printf("\n[E1] cached %.1f MIPS (%.1f unchained), "
                "pure-interpreter %.1f MIPS, speedup %.2fx "
                "(chaining alone %.2fx), 2-hart SMP %.1f MIPS\n",
                cached, nochain, uncached, cached / uncached,
                cached / nochain, smp2);
    const bool merged = bench::merge_bench_entry(
        "BENCH_emulation.json", "emulation_speed",
        "{\"kernel\": \"hot_loop\", "
        "\"cached_mips\": " + bench::json_number(cached) +
        ", \"nochain_mips\": " + bench::json_number(nochain) +
        ", \"interp_mips\": " + bench::json_number(uncached) +
        ", \"cached_vs_interp\": " + bench::json_number(cached / uncached) +
        ", \"chain_speedup\": " + bench::json_number(cached / nochain) +
        ", \"smp2_mips\": " + bench::json_number(smp2) + "}");
    S4E_CHECK(merged);
    std::printf("  (recorded in BENCH_emulation.json)\n");
  }
  return 0;
}
