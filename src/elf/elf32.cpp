#include "elf/elf32.hpp"

#include <cstring>
#include <fstream>

#include "common/strings.hpp"

namespace s4e::elf {

namespace {

// ELF constants (subset needed for ET_EXEC / EM_RISCV images).
constexpr u8 kElfMag[4] = {0x7f, 'E', 'L', 'F'};
constexpr u8 kElfClass32 = 1;
constexpr u8 kElfData2Lsb = 1;
constexpr u16 kEtExec = 2;
constexpr u16 kEmRiscv = 243;
constexpr u32 kPtLoad = 1;
constexpr u32 kShtProgbits = 1;
constexpr u32 kShtSymtab = 2;
constexpr u32 kShtStrtab = 3;
constexpr u32 kShfAlloc = 0x2;
constexpr u32 kShfExecinstr = 0x4;
constexpr u32 kShfWrite = 0x1;
constexpr u16 kShnAbs = 0xfff1;

constexpr std::size_t kEhdrSize = 52;
constexpr std::size_t kPhdrSize = 32;
constexpr std::size_t kShdrSize = 40;
constexpr std::size_t kSymSize = 16;

// Vendor section carrying `.loopbound` annotations as (addr, bound) pairs.
constexpr const char* kAnnotSectionName = ".s4e.annot";

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<u8>& out) : out_(out) {}

  void u8_at(std::size_t pos, u8 v) { out_[pos] = v; }
  void put_u8(u8 v) { out_.push_back(v); }
  void put_u16(u16 v) {
    out_.push_back(static_cast<u8>(v));
    out_.push_back(static_cast<u8>(v >> 8));
  }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void patch_u32(std::size_t pos, u32 v) {
    for (int i = 0; i < 4; ++i) out_[pos + i] = static_cast<u8>(v >> (8 * i));
  }
  void put_bytes(const std::vector<u8>& bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void pad_to(std::size_t alignment) {
    while (out_.size() % alignment != 0) out_.push_back(0);
  }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<u8>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<u8>& data) : data_(data) {}

  Result<u8> get_u8(std::size_t pos) const {
    if (pos >= data_.size()) return oob(pos);
    return data_[pos];
  }
  Result<u16> get_u16(std::size_t pos) const {
    if (pos + 2 > data_.size()) return oob(pos);
    return static_cast<u16>(data_[pos] | (data_[pos + 1] << 8));
  }
  Result<u32> get_u32(std::size_t pos) const {
    if (pos + 4 > data_.size()) return oob(pos);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[pos + i]) << (8 * i);
    return v;
  }
  Result<std::string> get_cstr(std::size_t pos) const {
    std::string out;
    while (pos < data_.size() && data_[pos] != 0) {
      out.push_back(static_cast<char>(data_[pos++]));
    }
    if (pos >= data_.size()) return Error(ErrorCode::kParseError,
                                          "unterminated string in ELF");
    return out;
  }
  std::size_t size() const { return data_.size(); }

 private:
  static Error oob(std::size_t pos) {
    return Error(ErrorCode::kParseError,
                 format("ELF truncated at offset %zu", pos));
  }
  const std::vector<u8>& data_;
};

}  // namespace

Result<std::vector<u8>> write_elf(const assembler::Program& program) {
  // Only emit non-empty loadable sections.
  std::vector<const assembler::Section*> loadable;
  for (const auto& section : program.sections) {
    if (!section.bytes.empty()) loadable.push_back(&section);
  }

  std::vector<u8> image;
  ByteWriter w(image);

  const std::size_t phnum = loadable.size();
  // Section header table: null + loadable + symtab + strtab + annot + shstrtab
  const std::size_t shnum = 1 + loadable.size() + 4;

  // --- ELF header (patched later for e_shoff).
  for (u8 b : kElfMag) w.put_u8(b);
  w.put_u8(kElfClass32);
  w.put_u8(kElfData2Lsb);
  w.put_u8(1);              // EV_CURRENT
  for (int i = 0; i < 9; ++i) w.put_u8(0);  // padding
  w.put_u16(kEtExec);
  w.put_u16(kEmRiscv);
  w.put_u32(1);             // e_version
  w.put_u32(program.entry); // e_entry
  w.put_u32(kEhdrSize);     // e_phoff
  const std::size_t shoff_pos = w.size();
  w.put_u32(0);             // e_shoff (patched)
  w.put_u32(0);             // e_flags
  w.put_u16(kEhdrSize);
  w.put_u16(kPhdrSize);
  w.put_u16(static_cast<u16>(phnum));
  w.put_u16(kShdrSize);
  w.put_u16(static_cast<u16>(shnum));
  w.put_u16(static_cast<u16>(shnum - 1));  // shstrtab index (last)
  S4E_CHECK(w.size() == kEhdrSize);

  // --- Program headers (offsets patched after layout).
  struct Patch { std::size_t offset_pos; const assembler::Section* section; };
  std::vector<Patch> phdr_patches;
  for (const auto* section : loadable) {
    const bool executable = section->name == ".text";
    w.put_u32(kPtLoad);
    phdr_patches.push_back({w.size(), section});
    w.put_u32(0);  // p_offset (patched)
    w.put_u32(section->base);  // p_vaddr
    w.put_u32(section->base);  // p_paddr
    w.put_u32(static_cast<u32>(section->bytes.size()));  // p_filesz
    w.put_u32(static_cast<u32>(section->bytes.size()));  // p_memsz
    w.put_u32(executable ? 0x5u : 0x6u);  // R+X / R+W
    w.put_u32(4);  // p_align
  }

  // --- Section contents.
  std::vector<u32> section_offsets;
  for (std::size_t i = 0; i < loadable.size(); ++i) {
    w.pad_to(4);
    section_offsets.push_back(static_cast<u32>(w.size()));
    w.patch_u32(phdr_patches[i].offset_pos, static_cast<u32>(w.size()));
    w.put_bytes(loadable[i]->bytes);
  }

  // --- .strtab + .symtab.
  std::vector<u8> strtab{0};
  std::vector<u8> symtab(kSymSize, 0);  // null symbol
  {
    std::vector<u8> sym_bytes;
    ByteWriter sw(sym_bytes);
    for (const auto& [name, value] : program.symbols) {
      const u32 name_offset = static_cast<u32>(strtab.size());
      strtab.insert(strtab.end(), name.begin(), name.end());
      strtab.push_back(0);
      sw.put_u32(name_offset);
      sw.put_u32(value);
      sw.put_u32(0);                      // st_size
      sw.put_u8((1u << 4) | 0u);          // GLOBAL, NOTYPE
      sw.put_u8(0);                       // st_other
      sw.put_u16(kShnAbs);
    }
    symtab.insert(symtab.end(), sym_bytes.begin(), sym_bytes.end());
  }
  w.pad_to(4);
  const u32 symtab_offset = static_cast<u32>(w.size());
  w.put_bytes(symtab);
  const u32 strtab_offset = static_cast<u32>(w.size());
  w.put_bytes(strtab);

  // --- .s4e.annot (addr, bound pairs).
  w.pad_to(4);
  const u32 annot_offset = static_cast<u32>(w.size());
  for (const auto& bound : program.loop_bounds) {
    w.put_u32(bound.address);
    w.put_u32(bound.bound);
  }
  const u32 annot_size =
      static_cast<u32>(program.loop_bounds.size() * 8);

  // --- .shstrtab.
  std::vector<u8> shstrtab{0};
  auto shstr = [&](const std::string& name) {
    const u32 offset = static_cast<u32>(shstrtab.size());
    shstrtab.insert(shstrtab.end(), name.begin(), name.end());
    shstrtab.push_back(0);
    return offset;
  };
  std::vector<u32> loadable_names;
  for (const auto* section : loadable) loadable_names.push_back(shstr(section->name));
  const u32 symtab_name = shstr(".symtab");
  const u32 strtab_name = shstr(".strtab");
  const u32 annot_name = shstr(kAnnotSectionName);
  const u32 shstrtab_name = shstr(".shstrtab");
  const u32 shstrtab_offset = static_cast<u32>(w.size());
  w.put_bytes(shstrtab);

  // --- Section headers.
  w.pad_to(4);
  w.patch_u32(shoff_pos, static_cast<u32>(w.size()));
  auto put_shdr = [&](u32 name, u32 type, u32 flags, u32 addr, u32 offset,
                      u32 size, u32 link, u32 entsize) {
    w.put_u32(name);
    w.put_u32(type);
    w.put_u32(flags);
    w.put_u32(addr);
    w.put_u32(offset);
    w.put_u32(size);
    w.put_u32(link);
    w.put_u32(0);  // sh_info
    w.put_u32(4);  // sh_addralign
    w.put_u32(entsize);
  };
  put_shdr(0, 0, 0, 0, 0, 0, 0, 0);  // null
  for (std::size_t i = 0; i < loadable.size(); ++i) {
    const bool executable = loadable[i]->name == ".text";
    put_shdr(loadable_names[i], kShtProgbits,
             kShfAlloc | (executable ? kShfExecinstr : kShfWrite),
             loadable[i]->base, section_offsets[i],
             static_cast<u32>(loadable[i]->bytes.size()), 0, 0);
  }
  const u32 strtab_index = static_cast<u32>(1 + loadable.size() + 1);
  put_shdr(symtab_name, kShtSymtab, 0, 0, symtab_offset,
           static_cast<u32>(symtab.size()), strtab_index, kSymSize);
  put_shdr(strtab_name, kShtStrtab, 0, 0, strtab_offset,
           static_cast<u32>(strtab.size()), 0, 0);
  put_shdr(annot_name, kShtProgbits, 0, 0, annot_offset, annot_size, 0, 8);
  put_shdr(shstrtab_name, kShtStrtab, 0, 0, shstrtab_offset,
           static_cast<u32>(shstrtab.size()), 0, 0);

  return image;
}

Result<assembler::Program> read_elf(const std::vector<u8>& image) {
  ByteReader r(image);
  if (image.size() < kEhdrSize ||
      std::memcmp(image.data(), kElfMag, 4) != 0) {
    return Error(ErrorCode::kParseError, "not an ELF image");
  }
  S4E_TRY(ei_class, r.get_u8(4));
  S4E_TRY(ei_data, r.get_u8(5));
  if (ei_class != kElfClass32 || ei_data != kElfData2Lsb) {
    return Error(ErrorCode::kUnsupported, "only ELF32 little-endian supported");
  }
  S4E_TRY(machine, r.get_u16(18));
  if (machine != kEmRiscv) {
    return Error(ErrorCode::kUnsupported,
                 format("unsupported ELF machine %u (want RISC-V)", machine));
  }
  assembler::Program program;
  program.sections.clear();
  S4E_TRY(entry, r.get_u32(24));
  program.entry = entry;
  S4E_TRY(shoff, r.get_u32(32));
  S4E_TRY(shentsize, r.get_u16(46));
  S4E_TRY(shnum, r.get_u16(48));
  S4E_TRY(shstrndx, r.get_u16(50));
  if (shoff == 0 || shnum == 0) {
    return Error(ErrorCode::kUnsupported,
                 "ELF without section headers not supported");
  }

  struct Shdr {
    u32 name, type, flags, addr, offset, size, link, entsize;
  };
  auto read_shdr = [&](unsigned index) -> Result<Shdr> {
    const std::size_t base = shoff + std::size_t{index} * shentsize;
    Shdr s{};
    S4E_TRY(name, r.get_u32(base + 0));
    S4E_TRY(type, r.get_u32(base + 4));
    S4E_TRY(flags, r.get_u32(base + 8));
    S4E_TRY(addr, r.get_u32(base + 12));
    S4E_TRY(offset, r.get_u32(base + 16));
    S4E_TRY(size, r.get_u32(base + 20));
    S4E_TRY(link, r.get_u32(base + 24));
    S4E_TRY(entsize, r.get_u32(base + 36));
    s.name = name; s.type = type; s.flags = flags; s.addr = addr;
    s.offset = offset; s.size = size; s.link = link; s.entsize = entsize;
    return s;
  };

  S4E_TRY(shstr_hdr, read_shdr(shstrndx));
  auto section_name = [&](u32 name_offset) -> Result<std::string> {
    return r.get_cstr(shstr_hdr.offset + name_offset);
  };

  std::optional<Shdr> symtab_hdr;
  for (unsigned i = 1; i < shnum; ++i) {
    S4E_TRY(shdr, read_shdr(i));
    S4E_TRY(name, section_name(shdr.name));
    if (shdr.type == kShtProgbits && (shdr.flags & kShfAlloc) != 0) {
      if (shdr.offset + shdr.size > image.size()) {
        return Error(ErrorCode::kParseError,
                     "section '" + name + "' exceeds image");
      }
      assembler::Section section;
      section.name = name;
      section.base = shdr.addr;
      section.bytes.assign(image.begin() + shdr.offset,
                           image.begin() + shdr.offset + shdr.size);
      program.sections.push_back(std::move(section));
    } else if (shdr.type == kShtSymtab) {
      symtab_hdr = shdr;
    } else if (name == kAnnotSectionName) {
      for (u32 pos = 0; pos + 8 <= shdr.size; pos += 8) {
        S4E_TRY(addr, r.get_u32(shdr.offset + pos));
        S4E_TRY(bound, r.get_u32(shdr.offset + pos + 4));
        program.loop_bounds.push_back(assembler::LoopBound{addr, bound});
      }
    }
  }

  if (symtab_hdr) {
    S4E_TRY(strtab_hdr, read_shdr(symtab_hdr->link));
    const u32 count = symtab_hdr->entsize
                          ? symtab_hdr->size / symtab_hdr->entsize
                          : 0;
    for (u32 i = 1; i < count; ++i) {
      const std::size_t base = symtab_hdr->offset + std::size_t{i} * kSymSize;
      S4E_TRY(name_offset, r.get_u32(base));
      S4E_TRY(value, r.get_u32(base + 4));
      S4E_TRY(name, r.get_cstr(strtab_hdr.offset + name_offset));
      if (!name.empty()) program.symbols[name] = value;
    }
  }
  return program;
}

Status write_elf_file(const assembler::Program& program,
                      const std::string& path) {
  S4E_TRY(image, write_elf(program));
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Error(ErrorCode::kIoError, "cannot open '" + path + "' for write");
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  return out.good() ? Status()
                    : Status(Error(ErrorCode::kIoError,
                                   "short write to '" + path + "'"));
}

Result<assembler::Program> read_elf_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot open '" + path + "'");
  }
  std::vector<u8> image((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  return read_elf(image);
}

}  // namespace s4e::elf
