// Snapshot/restore layer tests (ctest -L snapshot):
//   * StateWriter/StateReader blob round-trips
//   * per-device reset() regression (UART, CLINT, GPIO, test finisher)
//   * dirty-page tracking: restore cost proportional to pages written
//   * TB-cache range invalidation drops only overlapping blocks
//   * fresh-run == restored-run equivalence, property-tested over
//     generated torture programs
//   * campaign engines produce bit-identical results with and without
//     per-worker machine reuse
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "asm/assembler.hpp"
#include "fault/fault.hpp"
#include "mutation/mutation.hpp"
#include "testgen/testgen.hpp"
#include "vp/machine.hpp"
#include "vp/runner.hpp"
#include "vp/snapshot.hpp"
#include "vp/tb_cache.hpp"

namespace s4e::vp {
namespace {

assembler::Program assemble_or_die(const char* source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok());
  return *program;
}

// Prints "hi", stores a marker to .data, exits 7.
const char* kHelloSource = R"(
_start:
    li t0, 0x10000000
    li t1, 104
    sw t1, 0(t0)
    li t1, 105
    sw t1, 0(t0)
    la t2, mark
    li t3, 0x1234
    sw t3, 0(t2)
    li a0, 7
    li a7, 93
    ecall
.data
mark:
    .word 0
)";

TEST(StateBlob, RoundTripAndExhaustion) {
  StateWriter writer;
  writer.put_u8(0xab);
  writer.put_u32(0xdeadbeef);
  writer.put_u64(0x0123456789abcdefULL);
  const std::string text = "snapshot";
  writer.put_blob(text.data(), text.size());
  const std::vector<u8> blob = writer.take();

  StateReader reader(blob);
  EXPECT_EQ(reader.get_u8(), 0xab);
  EXPECT_EQ(reader.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789abcdefULL);
  EXPECT_FALSE(reader.exhausted());
  std::string read_back(reader.get_blob_size(), '\0');
  reader.get_bytes(read_back.data(), read_back.size());
  EXPECT_EQ(read_back, text);
  EXPECT_TRUE(reader.exhausted());
}

TEST(StateBlob, EmptyBlobIsExhausted) {
  StateWriter writer;
  const std::vector<u8> blob = writer.take();
  StateReader reader(blob);
  EXPECT_TRUE(reader.exhausted());
}

// --------------------------------------------------------------------------
// Per-device reset regression: every device must drop its buffered
// guest-visible state on Machine::reset().

TEST(DeviceReset, UartClearsLogQueueAndCounters) {
  Machine machine;
  ASSERT_NE(machine.uart(), nullptr);
  ASSERT_TRUE(machine.bus().write(Uart::kDefaultBase + Uart::kTxData, 4, 'x')
                  .ok());
  machine.uart()->push_rx("abc");
  ASSERT_TRUE(
      machine.bus().read(Uart::kDefaultBase + Uart::kRxData, 4).ok());
  EXPECT_EQ(machine.uart()->tx_log(), "x");
  EXPECT_EQ(machine.uart()->tx_count(), 1u);
  EXPECT_EQ(machine.uart()->rx_count(), 1u);

  machine.reset();
  EXPECT_TRUE(machine.uart()->tx_log().empty());
  EXPECT_EQ(machine.uart()->tx_count(), 0u);
  EXPECT_EQ(machine.uart()->rx_count(), 0u);
  // The queued "bc" is gone too: RXDATA reads empty.
  auto rx = machine.bus().read(Uart::kDefaultBase + Uart::kRxData, 4);
  ASSERT_TRUE(rx.ok());
  EXPECT_EQ(rx->value, 0xffff'ffffu);
}

TEST(DeviceReset, ClintReturnsToPowerOnTimer) {
  Machine machine;
  ASSERT_NE(machine.clint(), nullptr);
  machine.clint()->tick(500);
  ASSERT_TRUE(
      machine.bus().write(Clint::kDefaultBase + Clint::kMtimecmpLo, 4, 100)
          .ok());
  ASSERT_TRUE(
      machine.bus().write(Clint::kDefaultBase + Clint::kMtimecmpHi, 4, 0)
          .ok());
  EXPECT_TRUE(machine.clint()->timer_pending());

  machine.reset();
  EXPECT_EQ(machine.clint()->mtime(), 0u);
  EXPECT_EQ(machine.clint()->mtimecmp(), ~u64{0});
  EXPECT_FALSE(machine.clint()->timer_pending());
}

TEST(DeviceReset, GpioClearsWaveformLogButKeepsInputs) {
  Machine machine;
  ASSERT_NE(machine.gpio(), nullptr);
  machine.gpio()->set_in(0x55);
  machine.gpio()->tick(10);
  ASSERT_TRUE(
      machine.bus().write(Gpio::kDefaultBase + Gpio::kOut, 4, 0x3).ok());
  ASSERT_TRUE(
      machine.bus().write(Gpio::kDefaultBase + Gpio::kToggle, 4, 0x1).ok());
  EXPECT_EQ(machine.gpio()->out(), 0x2u);
  EXPECT_EQ(machine.gpio()->changes().size(), 2u);

  machine.reset();
  EXPECT_EQ(machine.gpio()->out(), 0u);
  EXPECT_TRUE(machine.gpio()->changes().empty());  // the log must not leak
  // Externally driven pin levels survive a machine reset.
  auto in = machine.bus().read(Gpio::kDefaultBase + Gpio::kIn, 4);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->value, 0x55u);
}

TEST(DeviceReset, TestDeviceStillFinishesAfterReset) {
  // The finisher is stateless; reset must not disturb its exit wiring.
  auto program = assemble_or_die(kHelloSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  ASSERT_TRUE(machine.run().normal_exit());

  machine.reset();
  auto write = machine.bus().write(TestDevice::kDefaultBase, 4,
                                   (9u << 16) | TestDevice::kFailMagic);
  ASSERT_TRUE(write.ok());
  const RunResult result = machine.run(1);
  EXPECT_EQ(result.reason, StopReason::kExitTestDevice);
  EXPECT_EQ(result.exit_code, 9);
}

TEST(DeviceReset, MachineRunThenResetDropsUartOutput) {
  auto program = assemble_or_die(kHelloSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  ASSERT_TRUE(machine.run().normal_exit());
  EXPECT_EQ(machine.uart()->tx_log(), "hi");
  machine.reset();
  EXPECT_TRUE(machine.uart()->tx_log().empty());
}

// --------------------------------------------------------------------------
// Dirty-page tracking.

TEST(DirtyPages, RestoreCopiesOnlyTouchedPages) {
  Machine machine;  // 4 MiB RAM -> 4096 pages of kRamPageBytes
  Snapshot snap;
  machine.save_state(snap);
  const u64 total_pages = machine.bus().ram_pages();
  ASSERT_GT(total_pages, 0u);

  // Dirty two distant pages plus one byte straddling nothing special.
  const u32 base = machine.config().ram_base;
  const u8 value = 0xcd;
  ASSERT_TRUE(machine.bus().ram_write(base + 0, &value, 1).ok());
  ASSERT_TRUE(
      machine.bus().ram_write(base + 10 * kRamPageBytes, &value, 1).ok());

  machine.restore_state(snap);
  const SnapshotStats& stats = machine.snapshot_stats();
  EXPECT_EQ(stats.snapshots, 1u);
  EXPECT_EQ(stats.restores, 1u);
  EXPECT_EQ(stats.pages_copied, 2u);
  EXPECT_EQ(stats.pages_total, total_pages);

  // Both bytes are back to their snapshot value (zero).
  u8 read_back = 0xff;
  ASSERT_TRUE(machine.bus().ram_read(base, &read_back, 1).ok());
  EXPECT_EQ(read_back, 0u);
  ASSERT_TRUE(
      machine.bus().ram_read(base + 10 * kRamPageBytes, &read_back, 1).ok());
  EXPECT_EQ(read_back, 0u);
}

TEST(DirtyPages, WriteSpanningPageBoundaryDirtiesBothPages) {
  Machine machine;
  Snapshot snap;
  machine.save_state(snap);
  const u32 boundary = machine.config().ram_base + kRamPageBytes - 2;
  const u32 value = 0xaabbccdd;
  ASSERT_TRUE(machine.bus().ram_write(boundary, &value, 4).ok());
  machine.restore_state(snap);
  EXPECT_EQ(machine.snapshot_stats().pages_copied, 2u);
}

TEST(DirtyPages, SecondRestoreAfterNoWritesCopiesNothing) {
  Machine machine;
  Snapshot snap;
  machine.save_state(snap);
  const u32 value = 1;
  ASSERT_TRUE(
      machine.bus().ram_write(machine.config().ram_base, &value, 4).ok());
  machine.restore_state(snap);
  const u64 copied_once = machine.snapshot_stats().pages_copied;
  EXPECT_EQ(copied_once, 1u);
  machine.restore_state(snap);  // nothing dirtied since
  EXPECT_EQ(machine.snapshot_stats().pages_copied, copied_once);
}

// --------------------------------------------------------------------------
// TB-cache range invalidation.

std::unique_ptr<TranslationBlock> make_block(u32 start, u32 byte_size) {
  auto block = std::make_unique<TranslationBlock>();
  block->start = start;
  block->byte_size = byte_size;
  return block;
}

TEST(TbCacheInvalidate, DropsOnlyOverlappingBlocks) {
  TbCache cache;
  cache.insert(make_block(0x8000'0000, 16));
  cache.insert(make_block(0x8000'0010, 16));
  cache.insert(make_block(0x8000'0100, 16));
  ASSERT_EQ(cache.size(), 3u);

  // Invalidate a range overlapping only the second block.
  EXPECT_EQ(cache.invalidate_range(0x8000'001c, 4), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(0x8000'0000), nullptr);
  EXPECT_EQ(cache.lookup(0x8000'0010), nullptr);  // front entry cleared too
  EXPECT_NE(cache.lookup(0x8000'0100), nullptr);
  EXPECT_EQ(cache.invalidated_blocks(), 1u);

  // A range outside the code watermarks is a cheap no-op.
  EXPECT_EQ(cache.invalidate_range(0x9000'0000, 64), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// --------------------------------------------------------------------------
// Fresh-run == restored-run equivalence.

struct RunObservation {
  RunResult result;
  std::string uart;
  u64 memory_hash = 0;
  u64 cycles = 0;
  std::array<u32, isa::kGprCount> gpr{};
};

RunObservation observe_run(Machine& machine,
                           const assembler::Program& program) {
  RunObservation obs;
  obs.result = machine.run();
  obs.uart = machine.uart() != nullptr ? machine.uart()->tx_log() : "";
  obs.memory_hash = data_memory_hash(machine, program);
  obs.cycles = machine.cycles();
  obs.gpr = machine.cpu().gpr;
  return obs;
}

void expect_same_observation(const RunObservation& a, const RunObservation& b,
                             const std::string& label) {
  EXPECT_EQ(a.result.reason, b.result.reason) << label;
  EXPECT_EQ(a.result.exit_code, b.result.exit_code) << label;
  EXPECT_EQ(a.result.instructions, b.result.instructions) << label;
  EXPECT_EQ(a.result.cycles, b.result.cycles) << label;
  EXPECT_EQ(a.result.final_pc, b.result.final_pc) << label;
  EXPECT_EQ(a.uart, b.uart) << label;
  EXPECT_EQ(a.memory_hash, b.memory_hash) << label;
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.gpr, b.gpr) << label;
}

TEST(SnapshotRestore, RestoredRunMatchesFreshRunWithDeviceTraffic) {
  auto program = assemble_or_die(kHelloSource);

  Machine fresh;
  ASSERT_TRUE(fresh.load_program(program).ok());
  const RunObservation golden = observe_run(fresh, program);
  ASSERT_TRUE(golden.result.normal_exit());
  EXPECT_EQ(golden.uart, "hi");

  Machine reused;
  ASSERT_TRUE(reused.load_program(program).ok());
  Snapshot snap;
  reused.save_state(snap);
  expect_same_observation(observe_run(reused, program), golden, "first");
  reused.restore_state(snap);
  expect_same_observation(observe_run(reused, program), golden, "restored");
  // And a third time, exercising a now-warm TB cache.
  reused.restore_state(snap);
  expect_same_observation(observe_run(reused, program), golden, "rewarmed");
}

class SnapshotTortureSeed : public ::testing::TestWithParam<u64> {};

TEST_P(SnapshotTortureSeed, FreshAndRestoredRunsAgree) {
  testgen::TortureConfig config;
  config.seed = GetParam();
  config.programs = 3;
  for (const auto& test : testgen::torture_suite(config)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    Machine fresh;
    ASSERT_TRUE(fresh.load_program(*program).ok());
    const RunObservation golden = observe_run(fresh, *program);

    Machine reused;
    ASSERT_TRUE(reused.load_program(*program).ok());
    Snapshot snap;
    reused.save_state(snap);
    expect_same_observation(observe_run(reused, *program), golden,
                            test.name + " first");
    reused.restore_state(snap);
    expect_same_observation(observe_run(reused, *program), golden,
                            test.name + " restored");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotTortureSeed,
                         ::testing::Values(101u, 202u, 303u));

TEST(WorkerVm, PrepareYieldsIdenticalRunsAndCountsStats) {
  auto program = assemble_or_die(kHelloSource);
  auto vm = WorkerVm::create(MachineConfig{}, program);
  ASSERT_TRUE(vm.ok());

  const RunObservation first = observe_run((*vm)->prepare(), program);
  ASSERT_TRUE(first.result.normal_exit());
  const RunObservation second = observe_run((*vm)->prepare(), program);
  expect_same_observation(second, first, "worker vm");
  EXPECT_EQ((*vm)->stats().snapshots, 1u);
  EXPECT_EQ((*vm)->stats().restores, 2u);
}

// --------------------------------------------------------------------------
// Campaign engines: reuse on vs off must be bit-identical (jobs = 1; the
// parallel variant lives in test_exec_pool under the tsan label).

const char* kCampaignSource = R"(
_start:
    la t0, data
    li t1, 8
    li a0, 0
loop:
    lw t2, 0(t0)
    add a0, a0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    ecall
.data
data:
    .word 3, 1, 4, 1, 5, 9, 2, 6
)";

TEST(CampaignReuse, FaultCampaignMatchesFreshMachines) {
  auto program = assemble_or_die(kCampaignSource);
  fault::CampaignConfig config;
  config.seed = 77;
  config.mutant_count = 120;
  config.jobs = 1;

  config.reuse_machines = false;
  fault::Campaign fresh(program, config);
  auto fresh_result = fresh.run();
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.error().to_string();

  config.reuse_machines = true;
  fault::Campaign reused(program, config);
  auto reused_result = reused.run();
  ASSERT_TRUE(reused_result.ok()) << reused_result.error().to_string();

  EXPECT_EQ(fresh_result->to_string(), reused_result->to_string());
  ASSERT_EQ(fresh_result->mutants.size(), reused_result->mutants.size());
  for (std::size_t i = 0; i < fresh_result->mutants.size(); ++i) {
    const auto& a = fresh_result->mutants[i];
    const auto& b = reused_result->mutants[i];
    EXPECT_EQ(a.outcome, b.outcome) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
    EXPECT_EQ(a.instructions, b.instructions) << "mutant " << i;
  }
  // The reuse path snapshots once and restores per mutant...
  EXPECT_EQ(reused_result->snapshot_stats.snapshots, 1u);
  EXPECT_EQ(reused_result->snapshot_stats.restores, 120u);
  // ...while the fresh path never touches the snapshot layer.
  EXPECT_EQ(fresh_result->snapshot_stats.restores, 0u);
}

TEST(CampaignReuse, MutationCampaignMatchesFreshMachines) {
  auto program = assemble_or_die(kCampaignSource);
  mutation::MutationConfig config;
  config.jobs = 1;

  config.reuse_machines = false;
  mutation::MutationCampaign fresh(program, config);
  auto fresh_score = fresh.run();
  ASSERT_TRUE(fresh_score.ok()) << fresh_score.error().to_string();
  ASSERT_GT(fresh_score->results.size(), 0u);

  config.reuse_machines = true;
  mutation::MutationCampaign reused(program, config);
  auto reused_score = reused.run();
  ASSERT_TRUE(reused_score.ok()) << reused_score.error().to_string();

  EXPECT_EQ(fresh_score->to_string(), reused_score->to_string());
  ASSERT_EQ(fresh_score->results.size(), reused_score->results.size());
  for (std::size_t i = 0; i < fresh_score->results.size(); ++i) {
    const auto& a = fresh_score->results[i];
    const auto& b = reused_score->results[i];
    EXPECT_EQ(a.verdict, b.verdict) << "mutant " << i;
    EXPECT_EQ(a.exit_code, b.exit_code) << "mutant " << i;
  }
  EXPECT_EQ(reused_score->snapshot_stats.restores,
            reused_score->results.size());
}

}  // namespace
}  // namespace s4e::vp
