#include "dataflow/triage.hpp"

#include <algorithm>

#include "isa/decoder.hpp"
#include "isa/defuse.hpp"
#include "isa/rvc.hpp"

namespace s4e::dataflow {

namespace {

using cfg::Terminator;
using isa::Instr;

// Canonical (sign-extended i32) reading of a program address — the space
// AbsValue and MemModel work in.
i64 canon(u32 address) { return static_cast<i32>(address); }

// Side-effect-free register-to-register computation: no memory access, no
// control transfer, no CSR/system interaction, cannot trap (RV32 division
// by zero is defined). The only architectural effect is the rd write.
bool pure_alu(const Instr& instr) {
  switch (instr.info().op_class) {
    case isa::OpClass::kArith:
    case isa::OpClass::kMul:
    case isa::OpClass::kDiv:
      return true;
    default:
      return false;
  }
}

// Both abstract values collapse to the same single concrete value (or the
// same single stack offset).
bool singleton_equal(const AbsValue& a, const AbsValue& b) {
  if (a.is_stack() != b.is_stack()) return false;
  if (!a.is_stack() && (!a.has_bounds() || !b.has_bounds())) return false;
  return a.lo() == a.hi() && b.lo() == b.hi() && a.lo() == b.lo();
}

void merge_ranges(std::vector<StaticTriage::Range>& ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& x, const auto& y) { return x.lo < y.lo; });
  std::vector<StaticTriage::Range> merged;
  for (const auto& r : ranges) {
    if (!merged.empty() && r.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, r.hi);
    } else {
      merged.push_back(r);
    }
  }
  ranges = std::move(merged);
}

bool overlaps(const std::vector<StaticTriage::Range>& ranges, i64 lo, i64 hi) {
  if (lo > hi) return true;  // wrapped around the canonical seam: punt
  for (const auto& r : ranges) {
    if (lo <= r.hi && r.lo <= hi) return true;
  }
  return false;
}

}  // namespace

std::optional<TriageMode> parse_triage_mode(std::string_view value) {
  if (value.empty() || value == "on") return TriageMode::kOn;
  if (value == "off") return TriageMode::kOff;
  if (value == "verify") return TriageMode::kVerify;
  return std::nullopt;
}

Result<StaticTriage> StaticTriage::build(const assembler::Program& program,
                                         const TriageOptions& options) {
  S4E_TRY(an, analyze_program(program));
  StaticTriage t;
  t.sections_ = program.sections;
  t.analysis_ = std::make_shared<const Analysis>(std::move(an));
  const Analysis& a = *t.analysis_;

  // Whole-program register read set. kExit blocks add the exit-ecall
  // observation window (the environment reads the argument and pointer
  // registers to form the exit code).
  t.ever_read_ = 0;
  t.reads_unknown_ = false;
  t.writes_unknown_ = false;
  bool any_stack_read = false;
  bool any_stack_write = false;
  i64 stack_lo = 0;  // sp-relative access offset bounds, across all frames
  i64 stack_hi = -1;
  for (std::size_t f = 0; f < a.cfg.functions.size(); ++f) {
    if (!a.function_reachable[f]) continue;
    const cfg::Function& fn = a.cfg.functions[f];
    const FunctionAnalysis& fa = a.functions[f];
    for (const cfg::BasicBlock& block : fn.blocks) {
      if (!fa.block_reachable[block.id]) continue;
      t.code_ranges_.push_back({canon(block.start), canon(block.end - 1)});
      u32 index = 0;
      walk_block(
          block, &a.mem, fa.reg.in[block.id],
          [&](u32 pc, const Instr& instr, const RegState& state) {
            t.ever_read_ |= isa::def_use(instr).reads;
            t.occurrences_[pc].push_back(
                {static_cast<u32>(f), block.id, index++});
            if (!instr.reads_memory() && !instr.writes_memory()) return;
            const AbsValue addr = effective_address(instr, state);
            const i64 size = access_size(instr.op);
            // Atomics record on both sides: an AMO first reads the word it
            // then overwrites, so a fault there is observable AND clobbered.
            const auto record = [&](bool write) {
              bool& unknown = write ? t.writes_unknown_ : t.reads_unknown_;
              auto& ranges = write ? t.write_ranges_ : t.read_ranges_;
              bool& any_stack = write ? any_stack_write : any_stack_read;
              if (addr.is_stack()) {
                any_stack = true;
                stack_lo = std::min(stack_lo, addr.lo());
                stack_hi = std::max(stack_hi, addr.hi() + size - 1);
              } else if (addr.has_bounds()) {
                ranges.push_back({addr.lo(), addr.hi() + size - 1});
              } else {
                unknown = true;
              }
            };
            if (instr.reads_memory()) record(false);
            if (instr.writes_memory()) record(true);
          });
      if (block.terminator == Terminator::kExit) {
        t.ever_read_ |= kExitLiveMask;
      }
    }
  }

  // Stack accesses live in [entry_sp - depth + lo, entry_sp + hi] for some
  // reachable function's entry sp, all of which sit within `depth` bytes of
  // the loader's initial sp. An unknown stack top or depth widens them to
  // "anywhere".
  if (any_stack_read || any_stack_write) {
    const i64 depth = a.summaries.empty() ? -1 : a.summaries[0].total_bytes;
    if (options.stack_top == 0 || depth < 0) {
      if (any_stack_read) t.reads_unknown_ = true;
      if (any_stack_write) t.writes_unknown_ = true;
    } else {
      const i64 top = canon(options.stack_top);
      const Range window{top - depth + stack_lo, top + stack_hi};
      if (any_stack_read) t.read_ranges_.push_back(window);
      if (any_stack_write) t.write_ranges_.push_back(window);
    }
  }

  merge_ranges(t.code_ranges_);
  merge_ranges(t.read_ranges_);
  merge_ranges(t.write_ranges_);
  return t;
}

bool StaticTriage::overlaps_code(i64 lo, i64 hi) const {
  return overlaps(code_ranges_, lo, hi);
}

bool StaticTriage::data_readable(i64 lo, i64 hi) const {
  return reads_unknown_ || overlaps(read_ranges_, lo, hi);
}

bool StaticTriage::data_writable(i64 lo, i64 hi) const {
  return writes_unknown_ || overlaps(write_ranges_, lo, hi);
}

std::optional<u32> StaticTriage::image_word(u32 address) const {
  for (const assembler::Section& section : sections_) {
    if (address < section.base ||
        u64{address} + 4 > u64{section.base} + section.bytes.size()) {
      continue;
    }
    const std::size_t off = address - section.base;
    return u32{section.bytes[off]} | (u32{section.bytes[off + 1]} << 8) |
           (u32{section.bytes[off + 2]} << 16) |
           (u32{section.bytes[off + 3]} << 24);
  }
  return std::nullopt;
}

TriageDecision StaticTriage::gpr_fault(unsigned reg) const {
  // x0 is left to execution: its hardwiring is the VP's concern, not a
  // liveness fact.
  if (reg == 0 || reg >= isa::kGprCount) return {};
  if ((ever_read_ & reg_bit(reg)) == 0) return {true, "dead-register"};
  return {};
}

TriageDecision StaticTriage::code_fault(u32 address, bool stuck_at, u8 bit,
                                        bool stuck_value) const {
  const i64 lo = canon(address);
  const i64 hi = lo + 3;
  if (stuck_at) {
    // Forcing a bit to its current value is the identity patch; it stays
    // one as long as no store may rewrite the word (the per-instruction
    // enforcement would otherwise revert a legitimate store).
    const std::optional<u32> word = image_word(address);
    if (word.has_value() && bit < 32 &&
        (((*word >> bit) & 1) != 0) == stuck_value && !data_writable(lo, hi)) {
      return {true, "stuck-at-nop"};
    }
  }
  if (!overlaps_code(lo, hi) && !data_readable(lo, hi) &&
      !data_writable(lo, hi)) {
    // Neither fetched nor read nor rewritten-then-read; .text is not part
    // of the campaign's final-state comparison.
    return {true, "unreachable-code"};
  }
  return {};
}

TriageDecision StaticTriage::mutant(u32 address, u8 length, u32 original,
                                    u32 mutated) const {
  const i64 lo = canon(address);
  const i64 hi = lo + length - 1;
  const u32 mask = length == 2 ? 0xffffu : ~u32{0};
  if ((original & mask) == (mutated & mask)) return {true, "identical"};
  // Any data read of the patched bytes makes the encoding itself
  // observable; no equivalence class below survives that.
  if (data_readable(lo, hi)) return {};
  if (!overlaps_code(lo, hi)) return {true, "unreachable-code"};

  auto it = occurrences_.find(address);
  if (it == occurrences_.end()) return {};  // partial overlap: must run
  const Analysis& a = *analysis_;

  Instr mut;
  if (length == 2) {
    auto decoded = isa::decompress(static_cast<u16>(mutated));
    if (!decoded.ok()) return {};
    mut = *decoded;
  } else {
    auto decoded = isa::decoder().decode(mutated);
    if (!decoded.ok()) return {};
    mut = *decoded;
  }
  mut.length = length;

  bool value_equiv = true;
  bool branch_equiv = true;
  bool dead_write = true;
  for (const Occurrence& o : it->second) {
    const cfg::Function& fn = a.cfg.functions[o.function];
    const cfg::BasicBlock& block = fn.blocks[o.block];
    const FunctionAnalysis& fa = a.functions[o.function];
    const Instr& orig = block.insns[o.index];
    if (orig.length != length) return {};

    // State before the instruction: replay the block prefix.
    RegState state = fa.reg.in[o.block];
    u32 pc = block.start;
    for (u32 i = 0; i < o.index; ++i) {
      RegDomain::apply(block.insns[i], pc, &a.mem, state);
      pc += block.insns[i].length;
    }

    // Live set after the instruction: fold the block suffix backward.
    auto effect_it = fa.call_effects.find(o.block);
    u32 live = Liveness::exit_adjust(
        block, fa.live.out[o.block],
        effect_it == fa.call_effects.end() ? nullptr : &effect_it->second);
    for (u32 i = static_cast<u32>(block.insns.size()); i-- > o.index + 1u;) {
      const isa::DefUse du = isa::def_use(block.insns[i]);
      live = (live & ~du.writes) | du.reads;
    }
    live &= ~u32{1};

    if (pure_alu(orig) && pure_alu(mut)) {
      if (orig.rd == mut.rd && orig.rd != 0) {
        RegState so = state;
        RegState sm = state;
        RegDomain::apply(orig, pc, &a.mem, so);
        RegDomain::apply(mut, pc, &a.mem, sm);
        if (!singleton_equal(so.regs[orig.rd], sm.regs[mut.rd])) {
          value_equiv = false;
        }
      } else {
        value_equiv = false;
      }
      const u32 written = isa::def_use(orig).writes | isa::def_use(mut).writes;
      if ((written & live) != 0) dead_write = false;
      branch_equiv = false;
    } else if (orig.is_branch() && mut.is_branch()) {
      const auto to = RegDomain::eval_branch(orig, state);
      const auto tm = RegDomain::eval_branch(mut, state);
      const auto next = [&](const Instr& i, bool taken) {
        return taken ? pc + static_cast<u32>(i.imm) : pc + i.length;
      };
      if (!to.has_value() || !tm.has_value() ||
          next(orig, *to) != next(mut, *tm)) {
        branch_equiv = false;
      }
      value_equiv = false;
      dead_write = false;
    } else {
      return {};  // loads, stores, jumps, CSRs: no static equivalence class
    }
  }
  if (value_equiv) return {true, "value-equivalent"};
  if (branch_equiv) return {true, "branch-equivalent"};
  if (dead_write) return {true, "dead-write"};
  return {};
}

}  // namespace s4e::dataflow
