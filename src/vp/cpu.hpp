// Architectural state of the RV32IM_Zicsr machine-mode hart.
#pragma once

#include <array>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "isa/csr.hpp"
#include "isa/registers.hpp"

namespace s4e::vp {

// mstatus bits the VP implements.
inline constexpr u32 kMstatusMie = 1u << 3;
inline constexpr u32 kMstatusMpie = 1u << 7;
inline constexpr u32 kMstatusMpp = 3u << 11;  // always M (11) here

// mie/mip bits.
inline constexpr u32 kMipMtip = 1u << 7;
inline constexpr u32 kMieMtie = 1u << 7;
inline constexpr u32 kMipMsip = 1u << 3;
inline constexpr u32 kMieMsie = 1u << 3;

// mcause values.
inline constexpr u32 kCauseIllegalInstruction = 2;
inline constexpr u32 kCauseBreakpoint = 3;
inline constexpr u32 kCauseLoadMisaligned = 4;
inline constexpr u32 kCauseLoadFault = 5;
inline constexpr u32 kCauseStoreMisaligned = 6;
inline constexpr u32 kCauseStoreFault = 7;
inline constexpr u32 kCauseEcallM = 11;
inline constexpr u32 kCauseInterrupt = 0x8000'0000u;
inline constexpr u32 kCauseMachineTimer = kCauseInterrupt | 7;
inline constexpr u32 kCauseMachineSoftware = kCauseInterrupt | 3;

// Machine-mode CSR file. Counter CSRs (cycle/instret/time) are not stored
// here — the machine supplies them at read time from its own counters.
class CsrFile {
 public:
  struct CounterView {
    u64 cycles = 0;
    u64 instret = 0;
    u64 time = 0;
    u32 hartid = 0;  // mhartid of the hart doing the read
  };

  // Read with WARL/read-only semantics. Unknown addresses fail (the CPU
  // raises an illegal-instruction trap).
  Result<u32> read(u16 address, const CounterView& counters) const;

  // Write; read-only CSRs fail, WARL fields are masked.
  Status write(u16 address, u32 value);

  // Fields the trap logic manipulates directly.
  u32 mstatus = kMstatusMpp;  // MPP=M
  u32 mie = 0;
  u32 mip = 0;
  u32 mtvec = 0;
  u32 mscratch = 0;
  u32 mepc = 0;
  u32 mcause = 0;
  u32 mtval = 0;
};

struct CpuState {
  std::array<u32, isa::kGprCount> gpr{};
  u32 pc = 0;
  CsrFile csr;

  u32 read_gpr(unsigned index) const noexcept { return gpr[index & 31]; }
  void write_gpr(unsigned index, u32 value) noexcept {
    index &= 31;
    if (index != 0) gpr[index] = value;
  }
};

// One hardware thread: the architectural CPU state plus the LR/SC
// reservation. The machine owns a vector of these; the *active* hart's
// CpuState is staged into the machine's hot `cpu_` member while it runs
// (so the single-hart fast path is untouched), but reservations live here
// permanently — remote stores must be able to clear any hart's reservation
// without a swap.
struct Hart {
  CpuState cpu;
  bool res_valid = false;  // LR/SC reservation armed
  u32 res_addr = 0;        // reserved word address (4-byte aligned)
};

}  // namespace s4e::vp
