# balanced two-level call chain with a spilled frame
# expected exit code: 40

_start:
    li a0, 5
    call square_plus
    mv s0, a0
    li a0, 3
    call square_plus
    add a0, a0, s0
    li a7, 93
    ecall

# square_plus(x) = x*x + bias(x); spills ra and x across the inner call.
square_plus:
    addi sp, sp, -16
    sw ra, 12(sp)
    sw a0, 8(sp)
    call bias
    lw t0, 8(sp)
    mul t0, t0, t0
    add a0, a0, t0
    lw ra, 12(sp)
    addi sp, sp, 16
    ret

# bias(x) = (x & 3) + 1: a leaf with no frame.
bias:
    andi a0, a0, 3
    addi a0, a0, 1
    ret
