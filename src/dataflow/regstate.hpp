// Forward abstract-interpretation domain over the 32 GPRs.
//
// Each state tracks, per register, an AbsValue plus a may-be-uninitialized
// bit. The entry state is ABI-aware: at the program entry point x0 and sp
// (set by the loader) and the argument/global registers are initialized,
// while ra and the temporaries/saved registers hold reset garbage; at a
// callee entry everything is initialized (the caller's frame is live) and
// sp is the fresh frame reference. Call-return edges clobber the
// caller-saved registers and preserve sp and the callee-saved registers —
// the standard RV32 calling-convention assumption, which hand-written
// assembly in workloads/ must honour for the results to be sound.
#pragma once

#include <array>
#include <map>
#include <optional>

#include "cfg/cfg.hpp"
#include "dataflow/absvalue.hpp"
#include "dataflow/memmodel.hpp"
#include "isa/defuse.hpp"
#include "isa/registers.hpp"

namespace s4e::dataflow {

constexpr u32 reg_bit(unsigned reg) { return u32{1} << reg; }

// ra, t0-t2, a0-a7, t3-t6: clobbered across calls.
inline constexpr u32 kCallerSavedMask =
    reg_bit(1) | reg_bit(5) | reg_bit(6) | reg_bit(7) |
    (0xffu << 10) |                    // a0-a7
    (0xfu << 28);                      // t3-t6

// The effect of one call site on the caller's state, distilled from the
// callee's bottom-up FunctionSummary (summaries.hpp). The defaults are the
// conservative RV32 ABI assumptions and reproduce the pre-summary behavior
// exactly, so a null/absent effect is always sound.
struct CallEffect {
  // May-write: registers whose incoming value might not survive the call.
  // The complement (minus sp, handled via sp_balanced) is preserved: the
  // caller's abstract value and uninit bit flow across the call unchanged.
  u32 clobbered = kCallerSavedMask;
  // Must-write: registers the callee writes on every returning path. Only
  // these lose their maybe-uninit bit (forward) or their liveness (backward
  // kill) — a may-written register could still hold the caller's value.
  u32 must_write = 0;
  // Registers whose incoming value the callee (transitively) may read.
  u32 may_read = kCallReadMaskDefault;
  // Abstract a0/a1 at the callee's returns; meaningful when clobbered.
  AbsValue ret0 = AbsValue::top();
  AbsValue ret1 = AbsValue::top();
  // False when the callee provably unbalances sp: the caller's sp becomes
  // top at the continuation instead of being assumed preserved.
  bool sp_balanced = true;
  // True when this effect came from a computed (non-conservative) summary.
  // Precision-only consumers (e.g. lint's uninitialized-argument check)
  // restrict themselves to refined effects to avoid ABI-default noise.
  bool refined = false;

  // a0-a7, sp, gp, tp — mirrors liveness.hpp's kCallReadMask, restated here
  // to keep the header dependency one-directional (liveness includes us).
  static constexpr u32 kCallReadMaskDefault =
      (0xffu << 10) | reg_bit(2) | reg_bit(3) | reg_bit(4);
};

struct RegState {
  bool reached = false;
  std::array<AbsValue, isa::kGprCount> regs;  // default: all bottom
  u32 maybe_uninit = 0;
};

class RegDomain {
 public:
  static constexpr bool kForward = true;
  using State = RegState;

  struct Options {
    bool is_entry_function = false;
    const MemModel* mem = nullptr;
    // Per-call-block effects from interprocedural summaries (keyed by the
    // kCall block's id). Null or missing entries fall back to the
    // conservative ABI clobber.
    const std::map<cfg::BlockId, CallEffect>* call_effects = nullptr;
  };

  explicit RegDomain(const Options& options) : options_(options) {}

  State boundary(const cfg::Function& fn, const cfg::BasicBlock& block) const;
  State transfer(const cfg::Function& fn, const cfg::BasicBlock& block,
                 State state) const;
  bool join(State& into, const State& from, bool widen) const;
  bool edge_feasible(const cfg::Function& fn, const cfg::BasicBlock& block,
                     const State& out, const cfg::Edge& edge) const;

  // Small-step update for one instruction at `pc`. Public so linter walks
  // can replay blocks from a solved in-state.
  static void apply(const isa::Instr& instr, u32 pc, const MemModel* mem,
                    State& state);

  // Post-block effect: the call-return clobber for kCall blocks. A null
  // `effect` applies the conservative ABI assumptions.
  static void finish_block(const cfg::BasicBlock& block, State& state,
                           const CallEffect* effect = nullptr);

  // Definite branch outcome from the state at the branch, if decidable.
  static std::optional<bool> eval_branch(const isa::Instr& branch,
                                         const State& state);

 private:
  const CallEffect* call_effect(const cfg::BasicBlock& block) const;

  Options options_;
};

// Replay `block` from `state` (its solved in-state), invoking
// cb(pc, instr, state_before_instr) ahead of every instruction, then
// applying it. Runs finish_block at the end.
template <typename Cb>
void walk_block(const cfg::BasicBlock& block, const MemModel* mem,
                RegState state, Cb&& cb) {
  u32 pc = block.start;
  for (const isa::Instr& instr : block.insns) {
    cb(pc, instr, state);
    RegDomain::apply(instr, pc, mem, state);
    pc += instr.length;
  }
  RegDomain::finish_block(block, state);
}

// Abstract effective address of the load/store `instr` in `state`.
AbsValue effective_address(const isa::Instr& instr, const RegState& state);

// Access width in bytes for a load/store op.
u32 access_size(isa::Op op);

}  // namespace s4e::dataflow
