#include "wcet/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "dataflow/analyze.hpp"

#include "cfg/dominators.hpp"
#include "cfg/loops.hpp"
#include "common/strings.hpp"

namespace s4e::wcet {

namespace {

constexpr u64 kUnreachable = 0;
constexpr i64 kMinusInf = std::numeric_limits<i64>::min() / 4;

// Work-graph node used during loop condensation. Edge targets stay
// expressed as original BlockIds and are resolved through the `rep` map, so
// collapsing never has to rewrite third-party edge lists.
struct WorkEdge {
  cfg::BlockId target_block;
  u32 penalty;
};

struct WorkNode {
  u64 weight = 0;
  std::vector<WorkEdge> edges;
  bool alive = true;
};

}  // namespace

Result<u64> Analyzer::function_wcet(
    const cfg::Function& fn, const std::vector<assembler::LoopBound>& bounds,
    const std::map<u32, u64>& callee_wcet, AnalysisResult& out) const {
  const vp::TimingModel timing(options_.timing);
  const u32 penalty = timing.edge_cycles();

  cfg::Dominators dom(fn);
  S4E_TRY(loops, cfg::find_loops(fn, dom, bounds));

  FunctionWcet summary;
  summary.name = fn.name;
  summary.entry = fn.entry;
  summary.block_count = static_cast<u32>(fn.blocks.size());
  summary.loop_count = static_cast<u32>(loops.loops.size());

  // --- Per-block worst-case weight (+ callee summaries at call sites).
  std::vector<WorkNode> nodes(fn.blocks.size());
  std::vector<cfg::BlockId> rep(fn.blocks.size());
  for (const cfg::BasicBlock& block : fn.blocks) {
    WorkNode& node = nodes[block.id];
    rep[block.id] = block.id;
    u64 weight = 0;
    for (const isa::Instr& instr : block.insns) {
      weight += timing.worst_case_cycles(instr);
    }
    // Instruction-cache model: without a persistence analysis every block
    // execution must be assumed to miss every line it touches. (Charging
    // per line also dominates the dynamic side when a long CFG block spans
    // several translation blocks, each of which probes the cache once.)
    const u32 block_lines =
        (block.end - block.start + options_.timing.icache_line_bytes - 1) /
        options_.timing.icache_line_bytes;
    weight += u64{options_.timing.icache_miss_cycles} * block_lines;
    if (block.terminator == cfg::Terminator::kCall) {
      auto it = callee_wcet.find(block.call_target);
      S4E_CHECK_MSG(it != callee_wcet.end(),
                    "call graph not processed callee-first");
      // Callee body + the two control transfers (call, return).
      weight += it->second + 2ull * penalty;
    }
    node.weight = weight;
    // Edge penalties: taken edges always flush; with a branch predictor the
    // fall-through of a conditional branch can mispredict too.
    const bool branch_fallthrough_pays =
        options_.timing.branch_predictor &&
        block.terminator == cfg::Terminator::kBranch;
    for (const cfg::Edge& edge : block.successors) {
      u32 edge_penalty = edge.kind == cfg::EdgeKind::kTaken ? penalty : 0;
      if (edge.kind == cfg::EdgeKind::kFallThrough && branch_fallthrough_pays) {
        edge_penalty = penalty;
      }
      node.edges.push_back(WorkEdge{edge.target, edge_penalty});
    }

    // Emit the annotation record (own instructions only — QTA walks callee
    // blocks itself).
    AnnotatedBlock annotated;
    annotated.start = block.start;
    annotated.end = block.end;
    annotated.function_entry = fn.entry;
    u32 own = options_.timing.icache_miss_cycles * block_lines;
    for (const isa::Instr& instr : block.insns) {
      own += timing.worst_case_cycles(instr);
    }
    annotated.wcet = own;
    out.annotated.blocks.push_back(annotated);
    for (const cfg::Edge& edge : block.successors) {
      AnnotatedEdge ae;
      ae.source = block.start;
      ae.target = fn.blocks[edge.target].start;
      ae.penalty = edge.kind == cfg::EdgeKind::kTaken ? penalty : 0;
      if (edge.kind == cfg::EdgeKind::kFallThrough && branch_fallthrough_pays) {
        ae.penalty = penalty;
      }
      ae.is_back_edge = dom.dominates(edge.target, block.id);
      out.annotated.edges.push_back(ae);
    }
  }

  auto resolve = [&](cfg::BlockId block) {
    // rep chains stay short (one hop per enclosing loop); follow to fixpoint.
    cfg::BlockId r = rep[block];
    while (rep[r] != r) r = rep[r];
    rep[block] = r;
    return r;
  };

  // --- Collapse loops innermost-first.
  for (const cfg::Loop& loop : loops.loops) {
    if (!loop.bound.has_value()) {
      return Error(
          ErrorCode::kAnalysisError,
          format("%s: loop headed at 0x%08x has no derivable bound — add a "
                 ".loopbound annotation",
                 fn.name.c_str(), fn.blocks[loop.header].start));
    }
    ++summary.bounded_loops;
    const u64 bound = std::max<u32>(*loop.bound, 1);

    const cfg::BlockId header = resolve(loop.header);
    std::set<cfg::BlockId> members;
    for (cfg::BlockId block : loop.blocks) members.insert(resolve(block));

    // Topological order of the member subgraph (back edges to the header
    // excluded). DFS from the header.
    std::vector<cfg::BlockId> topo;
    std::set<cfg::BlockId> visited;
    std::vector<std::pair<cfg::BlockId, std::size_t>> stack{{header, 0}};
    visited.insert(header);
    while (!stack.empty()) {
      auto& [node, edge_index] = stack.back();
      if (edge_index < nodes[node].edges.size()) {
        const cfg::BlockId target = resolve(nodes[node].edges[edge_index].target_block);
        ++edge_index;
        if (members.count(target) != 0 && target != header &&
            visited.insert(target).second) {
          stack.push_back({target, 0});
        }
      } else {
        topo.push_back(node);
        stack.pop_back();
      }
    }
    std::reverse(topo.begin(), topo.end());  // header first

    // Longest path from the header within the loop body.
    std::map<cfg::BlockId, i64> dist;
    for (cfg::BlockId member : members) dist[member] = kMinusInf;
    dist[header] = static_cast<i64>(nodes[header].weight);
    i64 max_back = kMinusInf;
    i64 max_exit = kMinusInf;
    for (cfg::BlockId node_id : topo) {
      if (dist[node_id] == kMinusInf) continue;
      max_exit = std::max(max_exit, dist[node_id]);
      for (const WorkEdge& edge : nodes[node_id].edges) {
        const cfg::BlockId target = resolve(edge.target_block);
        if (target == header) {
          max_back = std::max(max_back,
                              dist[node_id] + static_cast<i64>(edge.penalty));
        } else if (members.count(target) != 0) {
          dist[target] = std::max(
              dist[target], dist[node_id] + static_cast<i64>(edge.penalty) +
                                static_cast<i64>(nodes[target].weight));
        }
      }
    }
    S4E_CHECK_MSG(max_back != kMinusInf, "loop without reachable back edge");
    if (max_exit == kMinusInf) max_exit = dist[header];

    // Build the supernode in place of the header.
    WorkNode supernode;
    supernode.weight = (bound - 1) * static_cast<u64>(max_back) +
                       static_cast<u64>(max_exit);
    for (cfg::BlockId member : members) {
      for (const WorkEdge& edge : nodes[member].edges) {
        const cfg::BlockId target = resolve(edge.target_block);
        if (members.count(target) == 0) {
          supernode.edges.push_back(edge);
        }
      }
    }
    // Irreducibility check: no edge from outside may enter a non-header
    // member.
    for (cfg::BlockId id = 0; id < nodes.size(); ++id) {
      if (!nodes[id].alive || members.count(resolve(id)) != 0) continue;
      for (const WorkEdge& edge : nodes[id].edges) {
        const cfg::BlockId target = resolve(edge.target_block);
        if (members.count(target) != 0 && target != header) {
          return Error(ErrorCode::kAnalysisError,
                       format("%s: irreducible entry into loop at 0x%08x",
                              fn.name.c_str(), fn.blocks[loop.header].start));
        }
      }
    }
    for (cfg::BlockId member : members) {
      if (member != header) nodes[member].alive = false;
      rep[member] = header;
    }
    rep[header] = header;
    nodes[header] = std::move(supernode);

    // Record the bound for the annotation.
    out.annotated.loop_bounds[fn.blocks[loop.header].start] =
        static_cast<u32>(bound);
  }

  // --- Longest path over the residual DAG from the entry representative.
  std::map<cfg::BlockId, u64> memo;
  std::set<cfg::BlockId> on_stack;
  // Iterative DFS with explicit post-processing.
  struct Frame {
    cfg::BlockId node;
    std::size_t edge_index;
  };
  const cfg::BlockId entry_rep = resolve(0);
  std::vector<Frame> frames{{entry_rep, 0}};
  std::set<cfg::BlockId> opened{entry_rep};
  while (!frames.empty()) {
    Frame& frame = frames.back();
    const WorkNode& node = nodes[frame.node];
    if (frame.edge_index < node.edges.size()) {
      const cfg::BlockId target = resolve(node.edges[frame.edge_index].target_block);
      ++frame.edge_index;
      if (memo.count(target) == 0) {
        if (!opened.insert(target).second) {
          // Opened but not finished: `target` is on the DFS stack, i.e.
          // the residual graph still has a cycle that loop detection did
          // not cover (a cycle without a dominating header — irreducible).
          // Continuing would silently drop the cycle from the bound.
          return Error(
              ErrorCode::kAnalysisError,
              format("%s: irreducible cycle through 0x%08x — control flow "
                     "is not analyzable",
                     fn.name.c_str(), fn.blocks[target].start));
        }
        frames.push_back(Frame{target, 0});
      }
      continue;
    }
    u64 best = 0;
    for (const WorkEdge& edge : node.edges) {
      const cfg::BlockId target = resolve(edge.target_block);
      auto it = memo.find(target);
      if (it != memo.end()) {
        best = std::max(best, static_cast<u64>(edge.penalty) + it->second);
      }
    }
    memo[frame.node] = node.weight + best;
    frames.pop_back();
  }

  summary.wcet = memo[entry_rep];
  out.functions.push_back(summary);
  (void)kUnreachable;
  return summary.wcet;
}

Result<AnalysisResult> Analyzer::analyze(
    const assembler::Program& program) const {
  if (!options_.resolve_indirect && !options_.prune_infeasible) {
    S4E_TRY(program_cfg, cfg::build_cfg(program));
    return analyze(program_cfg);
  }
  S4E_TRY(analysis, dataflow::analyze_program(program));
  // The aiT-style contract still holds after resolution: every *reachable*
  // indirect jump must have an explicit target set.
  if (!analysis.unresolved.empty()) {
    const dataflow::UnresolvedSite& site = analysis.unresolved.front();
    return Error(
        ErrorCode::kAnalysisError,
        format("indirect %s at 0x%08x in function '%s' is not analyzable "
               "(target value: %s; %zu unresolved site(s) total)",
               site.is_call ? "call" : "jump", site.pc, site.function.c_str(),
               site.target.c_str(), analysis.unresolved.size()));
  }
  if (options_.prune_infeasible) {
    S4E_TRY(pruned, dataflow::prune_cfg(analysis));
    return analyze(pruned);
  }
  return analyze(analysis.cfg);
}

Result<AnalysisResult> Analyzer::analyze(
    const cfg::ProgramCfg& program_cfg) const {
  // Callee-first order over the call graph; recursion is rejected.
  const std::size_t n = program_cfg.functions.size();
  std::vector<std::vector<u32>> callees(n);
  for (u32 i = 0; i < n; ++i) {
    for (const cfg::BasicBlock& block : program_cfg.functions[i].blocks) {
      if (block.terminator == cfg::Terminator::kCall) {
        S4E_TRY(callee, program_cfg.function_at(block.call_target));
        callees[i].push_back(callee);
      }
    }
  }
  std::vector<int> state(n, 0);  // 0 unvisited, 1 in progress, 2 done
  std::vector<u32> order;
  // Recursive lambda via explicit stack.
  {
    std::vector<std::pair<u32, std::size_t>> stack{{0u, 0u}};
    state[0] = 1;
    while (!stack.empty()) {
      auto& [fn_index, child] = stack.back();
      if (child < callees[fn_index].size()) {
        const u32 callee = callees[fn_index][child];
        ++child;
        if (state[callee] == 1) {
          return Error(ErrorCode::kAnalysisError,
                       "recursive call graph is not analyzable (as in aiT, "
                       "recursion needs manual bounds — unsupported)");
        }
        if (state[callee] == 0) {
          state[callee] = 1;
          stack.push_back({callee, 0});
        }
        continue;
      }
      state[fn_index] = 2;
      order.push_back(fn_index);
      stack.pop_back();
    }
  }

  AnalysisResult result;
  const vp::TimingModel timing(options_.timing);
  result.annotated.program_name = options_.program_name;
  result.annotated.entry = program_cfg.entry_function().entry;
  result.annotated.redirect_penalty = timing.edge_cycles();
  result.annotated.penalize_all_transitions = options_.timing.branch_predictor;

  std::map<u32, u64> wcet_by_entry;
  for (u32 fn_index : order) {
    const cfg::Function& fn = program_cfg.functions[fn_index];
    S4E_TRY(wcet, function_wcet(fn, program_cfg.loop_bounds, wcet_by_entry,
                                result));
    wcet_by_entry[fn.entry] = wcet;
  }
  result.total_wcet = wcet_by_entry[program_cfg.entry_function().entry];
  result.annotated.total_wcet = result.total_wcet;
  result.annotated.reindex();

  // Entry function first in the summary list.
  std::stable_sort(result.functions.begin(), result.functions.end(),
                   [&](const FunctionWcet& a, const FunctionWcet& b) {
                     const u32 entry = program_cfg.entry_function().entry;
                     return (a.entry == entry) > (b.entry == entry);
                   });
  return result;
}

}  // namespace s4e::wcet
