// Fixed-size worker-thread pool with a bounded work queue.
//
// Built for the campaign engines (fault injection, binary mutation): they
// fan out thousands of fully independent guest executions, so the pool
// deliberately stays minimal — no work stealing, no futures, no priorities.
// Producers block when the queue is full (backpressure keeps the task
// backlog, and with it peak memory, bounded), workers pull FIFO, and the
// first exception thrown by any task is captured and rethrown to the
// caller of wait_idle()/the destructor's drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s4e::exec {

class ThreadPool {
 public:
  struct Options {
    // Number of worker threads; 0 means std::thread::hardware_concurrency()
    // (itself clamped to at least 1).
    unsigned threads = 0;
    // Maximum queued-but-not-started tasks before submit() blocks.
    std::size_t queue_capacity = 64;
  };

  explicit ThreadPool(const Options& options);
  // Drains the queue, joins all workers. Exceptions captured from tasks are
  // swallowed here (use wait_idle() to observe them).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue one task; blocks while the queue is at capacity. Returns false
  // (dropping the task) once shutdown() has begun.
  bool submit(std::function<void()> task);

  // Block until the queue is empty and every worker is idle, then rethrow
  // the first exception any task threw (if one did). The pool stays usable
  // afterwards.
  void wait_idle();

  // Stop accepting work, finish what is queued, join the workers.
  // Idempotent.
  void shutdown();

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }

  // Resolve an Options::threads-style job count: 0 -> hardware concurrency,
  // always at least 1, capped at 4096.
  static unsigned resolve_jobs(unsigned requested) noexcept;

 private:
  void worker_loop();

  const std::size_t queue_capacity_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable task_available_;   // signalled on push / shutdown
  std::condition_variable space_available_;  // signalled on pop
  std::condition_variable idle_;             // signalled when work drains
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // tasks currently executing
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace s4e::exec
