# Empty compiler generated dependencies file for s4e_core.
# This may be replaced when dependencies are built.
