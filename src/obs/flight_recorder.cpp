#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/opcode.hpp"
#include "isa/rvc.hpp"

namespace s4e::obs {

namespace {

std::size_t round_up_pow2(std::size_t value) {
  std::size_t pow2 = 1;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

bool is_control_flow_class(u32 op_class) {
  const auto cls = static_cast<isa::OpClass>(op_class);
  return cls == isa::OpClass::kBranch || cls == isa::OpClass::kJump;
}

std::string describe_insn(const FlightEvent& event) {
  auto decoded = isa::decoder().decode(event.a);
  if (!decoded.ok() && isa::is_compressed(static_cast<u16>(event.a))) {
    auto decompressed = isa::decompress(static_cast<u16>(event.a));
    if (decompressed.ok()) decoded = *decompressed;
  }
  return decoded.ok() ? isa::disassemble_at(*decoded, event.pc) : "<illegal>";
}

}  // namespace

FlightRecorderPlugin::FlightRecorderPlugin(std::size_t capacity)
    : ring_(round_up_pow2(std::max<std::size_t>(capacity, 2))),
      mask_(ring_.size() - 1) {}

std::vector<FlightEvent> FlightRecorderPlugin::snapshot() const {
  const u64 count = std::min<u64>(head_, ring_.size());
  std::vector<FlightEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  // The hot path never stores sequence numbers (one fewer write per
  // event); slot i of the ring holds event `seq` with seq ≡ i (mod size),
  // so the trail's numbering is reconstructed here.
  for (u64 seq = head_ - count; seq < head_; ++seq) {
    events.push_back(ring_[seq & mask_]);
    events.back().seq = seq;
  }
  return events;
}

std::string FlightRecorderPlugin::post_mortem(std::size_t last_n) const {
  std::vector<FlightEvent> events = snapshot();
  if (last_n != 0 && events.size() > last_n) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  std::string out =
      format("flight recorder: %llu events observed, last %zu:\n",
             static_cast<unsigned long long>(head_), events.size());
  if (events.empty()) {
    out += "  (no events recorded)\n";
    return out;
  }

  // The trail. A branch/jump followed by an instruction at a different
  // address than fall-through was taken; derive that at dump time instead
  // of paying for it on the hot path.
  const FlightEvent* last_branch = nullptr;
  const FlightEvent* last_mem = nullptr;
  const FlightEvent* last_trap = nullptr;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& event = events[i];
    switch (event.kind) {
      case FlightEvent::Kind::kInsn:
        out += format("  #%-8llu insn  pc=0x%08x  %s\n",
                      static_cast<unsigned long long>(event.seq), event.pc,
                      describe_insn(event).c_str());
        if (is_control_flow_class(event.b)) last_branch = &events[i];
        break;
      case FlightEvent::Kind::kMem:
        out += format("  #%-8llu mem   pc=0x%08x  %s %uB @0x%08x = 0x%08x\n",
                      static_cast<unsigned long long>(event.seq), event.pc,
                      event.is_store != 0 ? "store" : "load ", event.size,
                      event.a, event.b);
        last_mem = &events[i];
        break;
      case FlightEvent::Kind::kTrap:
        out += format("  #%-8llu trap  epc=0x%08x cause=0x%08x tval=0x%08x\n",
                      static_cast<unsigned long long>(event.seq), event.pc,
                      event.a, event.b);
        last_trap = &events[i];
        break;
    }
  }

  if (last_branch != nullptr) {
    // Find the instruction event after the branch, if the ring kept one.
    const FlightEvent* successor = nullptr;
    for (const FlightEvent& event : events) {
      if (event.seq > last_branch->seq &&
          event.kind == FlightEvent::Kind::kInsn) {
        successor = &event;
        break;
      }
    }
    out += format("  last branch: pc=0x%08x  %s", last_branch->pc,
                  describe_insn(*last_branch).c_str());
    if (successor != nullptr) {
      out += format("  -> 0x%08x", successor->pc);
    }
    out += "\n";
  }
  if (last_mem != nullptr) {
    out += format("  last access: %s %uB @0x%08x = 0x%08x (pc=0x%08x)\n",
                  last_mem->is_store != 0 ? "store" : "load", last_mem->size,
                  last_mem->a, last_mem->b, last_mem->pc);
  }
  if (last_trap != nullptr) {
    out += format("  last trap:   cause=0x%08x epc=0x%08x tval=0x%08x\n",
                  last_trap->a, last_trap->pc, last_trap->b);
  }
  return out;
}

}  // namespace s4e::obs
