// Textual disassembly, round-trippable through the assembler (the
// disassembler emits exactly the syntax the assembler accepts, which the
// property tests exploit).
#pragma once

#include <string>

#include "isa/instr.hpp"

namespace s4e::isa {

// "addi a0, a1, -4" / "lw t0, 8(sp)" / "beq a0, a1, 16" (branch/jump targets
// are printed as relative byte offsets; pass `pc` to print absolute).
std::string disassemble(const Instr& instr);

// Same, but branch/jump/auipc targets are rendered as absolute addresses
// given the instruction's own address.
std::string disassemble_at(const Instr& instr, u32 pc);

}  // namespace s4e::isa
