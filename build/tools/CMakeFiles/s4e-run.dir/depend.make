# Empty dependencies file for s4e-run.
# This may be replaced when dependencies are built.
