#include "core/ecosystem.hpp"

namespace s4e::core {

Result<assembler::Program> Ecosystem::build(const Workload& workload) const {
  return build_source(workload.source);
}

Result<assembler::Program> Ecosystem::build_source(
    const std::string& source) const {
  return assembler::assemble(source);
}

Result<RunOutcome> Ecosystem::run(const assembler::Program& program,
                                  const std::string& uart_input) const {
  vp::Machine machine(machine_config_);
  S4E_TRY_STATUS(machine.load_program(program));
  if (!uart_input.empty() && machine.uart() != nullptr) {
    machine.uart()->push_rx(uart_input);
  }
  RunOutcome outcome;
  outcome.result = machine.run();
  outcome.uart_output =
      machine.uart() != nullptr ? machine.uart()->tx_log() : "";
  return outcome;
}

Result<wcet::AnalysisResult> Ecosystem::analyze_wcet(
    const assembler::Program& program, const std::string& name) const {
  wcet::AnalyzerOptions options;
  options.timing = machine_config_.timing;
  options.program_name = name;
  return wcet::Analyzer(options).analyze(program);
}

Result<Ecosystem::QtaOutcome> Ecosystem::run_qta(
    const assembler::Program& program, const std::string& name) const {
  S4E_TRY(analysis, analyze_wcet(program, name));

  vp::Machine machine(machine_config_);
  S4E_TRY_STATUS(machine.load_program(program));
  qta::QtaPlugin plugin(analysis.annotated);
  plugin.attach(machine.vm_handle());

  QtaOutcome outcome;
  outcome.run.result = machine.run();
  outcome.run.uart_output =
      machine.uart() != nullptr ? machine.uart()->tx_log() : "";
  outcome.report = plugin.report(outcome.run.result.cycles);
  outcome.analysis = std::move(analysis);
  return outcome;
}

Result<coverage::CoverageData> Ecosystem::measure_coverage(
    const assembler::Program& program) const {
  vp::Machine machine(machine_config_);
  S4E_TRY_STATUS(machine.load_program(program));
  coverage::CoveragePlugin plugin;
  plugin.attach(machine.vm_handle());
  machine.run();
  return plugin.data();
}

Result<fault::CampaignResult> Ecosystem::run_campaign(
    const assembler::Program& program,
    const fault::CampaignConfig& config) const {
  fault::CampaignConfig campaign_config = config;
  campaign_config.machine = machine_config_;
  fault::Campaign campaign(program, campaign_config);
  return campaign.run();
}

}  // namespace s4e::core
