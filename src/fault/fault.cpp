#include "fault/fault.hpp"

#include <algorithm>
#include <memory>

#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "vp/runner.hpp"

namespace s4e::fault {

std::string FaultSpec::to_string() const {
  const char* kind_name =
      kind == FaultKind::kTransient ? "transient" : "stuck-at";
  switch (target) {
    case FaultTarget::kGpr:
      // hart is printed only when non-zero so single-hart fault lists stay
      // byte-identical to pre-SMP output.
      return format("%s gpr%s x%u bit %u%s trigger=%llu", kind_name,
                    hart != 0 ? format("@hart%u", hart).c_str() : "", reg, bit,
                    kind == FaultKind::kStuckAt ? (stuck_value ? "=1" : "=0")
                                                : "",
                    static_cast<unsigned long long>(trigger));
    case FaultTarget::kMemory:
      return format("%s mem 0x%08x bit %u%s trigger=%llu", kind_name, address,
                    bit,
                    kind == FaultKind::kStuckAt ? (stuck_value ? "=1" : "=0")
                                                : "",
                    static_cast<unsigned long long>(trigger));
    case FaultTarget::kCode:
      return format("%s code 0x%08x bit %u trigger=%llu", kind_name, address,
                    bit, static_cast<unsigned long long>(trigger));
  }
  return "?";
}

std::string_view to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "sdc";
    case Outcome::kCrash: return "crash";
    case Outcome::kHang: return "hang";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Injector plugin.

void FaultInjectorPlugin::apply_flip() {
  switch (spec_.target) {
    case FaultTarget::kGpr: {
      const u32 value = s4e_read_gpr_hart(vm(), spec_.hart, spec_.reg);
      s4e_write_gpr_hart(vm(), spec_.hart, spec_.reg,
                         flip_bit(value, spec_.bit));
      break;
    }
    case FaultTarget::kMemory: {
      u8 byte = 0;
      if (s4e_read_mem(vm(), spec_.address, &byte, 1) == 0) {
        byte = static_cast<u8>(byte ^ (1u << (spec_.bit & 7)));
        s4e_write_mem(vm(), spec_.address, &byte, 1);
      }
      break;
    }
    case FaultTarget::kCode: {
      u32 word = 0;
      if (s4e_read_mem(vm(), spec_.address, &word, 4) == 0) {
        word = flip_bit(word, spec_.bit);
        s4e_write_mem(vm(), spec_.address, &word, 4);
        s4e_flush_tb_cache(vm());
      }
      break;
    }
  }
  ++applications_;
}

void FaultInjectorPlugin::apply_stuck() {
  switch (spec_.target) {
    case FaultTarget::kGpr: {
      const u32 value = s4e_read_gpr_hart(vm(), spec_.hart, spec_.reg);
      const u32 forced = spec_.stuck_value ? (value | (u32{1} << spec_.bit))
                                           : (value & ~(u32{1} << spec_.bit));
      if (forced != value) {
        s4e_write_gpr_hart(vm(), spec_.hart, spec_.reg, forced);
        ++applications_;
      }
      break;
    }
    case FaultTarget::kMemory: {
      u8 byte = 0;
      if (s4e_read_mem(vm(), spec_.address, &byte, 1) == 0) {
        const u8 forced = spec_.stuck_value
                              ? static_cast<u8>(byte | (1u << (spec_.bit & 7)))
                              : static_cast<u8>(byte & ~(1u << (spec_.bit & 7)));
        if (forced != byte) {
          s4e_write_mem(vm(), spec_.address, &forced, 1);
          ++applications_;
        }
      }
      break;
    }
    case FaultTarget::kCode:
      // Handled once in on_insn_exec (code bytes don't change on their own).
      break;
  }
}

void FaultInjectorPlugin::on_insn_exec(const s4e_insn_info& insn) {
  (void)insn;
  if (spec_.kind == FaultKind::kStuckAt) {
    if (spec_.target == FaultTarget::kCode) {
      if (!fired_) {
        fired_ = true;
        u32 word = 0;
        if (s4e_read_mem(vm(), spec_.address, &word, 4) == 0) {
          const u32 forced = spec_.stuck_value
                                 ? (word | (u32{1} << spec_.bit))
                                 : (word & ~(u32{1} << spec_.bit));
          if (forced != word) {
            s4e_write_mem(vm(), spec_.address, &forced, 4);
            s4e_flush_tb_cache(vm());
            ++applications_;
          }
        }
      }
      return;
    }
    apply_stuck();
    return;
  }
  // Transient: one flip at the trigger point.
  if (!fired_ && s4e_icount(vm()) >= spec_.trigger) {
    fired_ = true;
    apply_flip();
  }
}

void FaultInjectorPlugin::on_mem(const s4e_mem_event& event) {
  // Stuck-at memory bit: re-force after any store covering the faulty byte.
  if (event.is_store && spec_.target == FaultTarget::kMemory &&
      spec_.kind == FaultKind::kStuckAt &&
      event.vaddr <= spec_.address &&
      spec_.address < event.vaddr + event.size) {
    apply_stuck();
  }
}

// ---------------------------------------------------------------------------
// Campaign.

Result<Campaign::Profile> Campaign::profile_run(CampaignResult& result) {
  vp::Machine machine(config_.machine);
  coverage::CoveragePlugin coverage_plugin;
  coverage_plugin.attach(machine.vm_handle());

  S4E_TRY(golden, vp::run_golden(machine, program_));
  result.golden_exit_code = golden.result.exit_code;
  result.golden_instructions = golden.result.instructions;
  result.golden_uart = golden.uart;
  result.golden_memory_hash = golden.memory_hash;

  Profile profile;
  profile.coverage = coverage_plugin.data();
  profile.touched_memory = std::move(golden.touched_memory);
  profile.executed_code = std::move(golden.executed_code);
  return profile;
}

std::vector<FaultSpec> Campaign::generate_faults(const Profile& profile) {
  Rng rng(config_.seed);
  std::vector<FaultSpec> faults;

  // Candidate registers: coverage-directed -> registers the binary reads
  // (a fault in a never-read register cannot propagate); blind -> x1..x31.
  std::vector<unsigned> registers;
  for (unsigned reg = 1; reg < isa::kGprCount; ++reg) {
    if (!config_.coverage_directed ||
        profile.coverage.gpr_reads[reg] != 0) {
      registers.push_back(reg);
    }
  }

  // Candidate memory: touched addresses, or the whole data section.
  std::vector<u32> memory = profile.touched_memory;
  if (!config_.coverage_directed || memory.empty()) {
    memory.clear();
    if (const assembler::Section* data = program_.find_section(".data")) {
      for (u32 offset = 0; offset < data->bytes.size(); ++offset) {
        memory.push_back(data->base + offset);
      }
    }
  }

  // Candidate code: executed addresses, or the whole text section.
  std::vector<u32> code = profile.executed_code;
  if (!config_.coverage_directed || code.empty()) {
    code.clear();
    if (const assembler::Section* text = program_.find_section(".text")) {
      for (u32 offset = 0; offset + 4 <= text->bytes.size(); offset += 4) {
        code.push_back(text->base + offset);
      }
    }
  }

  std::vector<FaultTarget> targets;
  if (config_.gpr_faults && !registers.empty()) {
    targets.push_back(FaultTarget::kGpr);
  }
  if (config_.memory_faults && !memory.empty()) {
    targets.push_back(FaultTarget::kMemory);
  }
  if (config_.code_faults && !code.empty()) {
    targets.push_back(FaultTarget::kCode);
  }
  if (targets.empty()) return faults;

  const u64 golden_icount = std::max<u64>(profile.coverage.total_instructions, 1);
  for (unsigned i = 0; i < config_.mutant_count; ++i) {
    FaultSpec spec;
    spec.target = targets[rng.next_below(static_cast<u32>(targets.size()))];
    spec.kind = rng.chance(1, 4) ? FaultKind::kStuckAt : FaultKind::kTransient;
    spec.trigger = rng.next_u64() % golden_icount;
    spec.stuck_value = rng.chance(1, 2);
    switch (spec.target) {
      case FaultTarget::kGpr:
        spec.reg = registers[rng.next_below(static_cast<u32>(registers.size()))];
        spec.bit = static_cast<u8>(rng.next_below(32));
        // The hart draw happens only on SMP machines so single-hart fault
        // lists consume the exact RNG sequence of pre-SMP builds.
        if (config_.machine.num_harts > 1) {
          spec.hart = rng.next_below(config_.machine.num_harts);
        }
        break;
      case FaultTarget::kMemory:
        spec.address = memory[rng.next_below(static_cast<u32>(memory.size()))];
        spec.bit = static_cast<u8>(rng.next_below(8));
        break;
      case FaultTarget::kCode:
        spec.address = code[rng.next_below(static_cast<u32>(code.size()))];
        spec.bit = static_cast<u8>(rng.next_below(32));
        // Stuck-at code faults behave like load-time mutations.
        break;
    }
    faults.push_back(spec);
  }
  return faults;
}

Outcome Campaign::classify(const vp::RunResult& run, const std::string& uart,
                           u64 memory_hash,
                           const CampaignResult& golden) const {
  if (run.reason == vp::StopReason::kMaxInstructions) return Outcome::kHang;
  if (!run.normal_exit()) return Outcome::kCrash;
  if (run.exit_code != golden.golden_exit_code ||
      uart != golden.golden_uart) {
    return Outcome::kSdc;
  }
  if (config_.compare_memory && memory_hash != golden.golden_memory_hash) {
    return Outcome::kSdc;  // silent corruption below the output surface
  }
  return Outcome::kMasked;
}

Result<MutantResult> Campaign::run_mutant_on(
    vp::Machine& machine, const FaultSpec& spec,
    const CampaignResult& golden) const {
  FaultInjectorPlugin injector(spec);
  injector.attach(machine.vm_handle());
  // The recorder is passive (it only reads the event structs), so outcomes
  // are bit-identical with and without it.
  std::unique_ptr<obs::FlightRecorderPlugin> recorder;
  if (config_.post_mortem) {
    recorder = std::make_unique<obs::FlightRecorderPlugin>(
        config_.post_mortem_events);
    recorder->attach(machine.vm_handle());
  }
  const vp::RunResult run = machine.run();

  MutantResult mutant;
  mutant.spec = spec;
  mutant.exit_code = run.exit_code;
  mutant.instructions = run.instructions;
  mutant.outcome = classify(
      run, machine.uart() != nullptr ? machine.uart()->tx_log() : "",
      vp::data_memory_hash(machine, program_), golden);
  if (recorder != nullptr && (mutant.outcome == Outcome::kHang ||
                              mutant.outcome == Outcome::kCrash)) {
    mutant.post_mortem = recorder->post_mortem(config_.post_mortem_events);
  }
  return mutant;
}

Result<MutantResult> Campaign::run_mutant(
    const FaultSpec& spec, const vp::MachineConfig& machine_config,
    const CampaignResult& golden) const {
  vp::Machine machine(machine_config);
  S4E_TRY_STATUS(machine.load_program(program_));
  return run_mutant_on(machine, spec, golden);
}

Result<CampaignResult> Campaign::run() {
  if (config_.shard_count < 1 || config_.shard_index >= config_.shard_count) {
    return Error(ErrorCode::kInvalidArgument,
                 format("invalid shard %u/%u", config_.shard_index,
                        config_.shard_count));
  }
  CampaignResult result;
  S4E_TRY(profile, profile_run(result));
  faults_ = generate_faults(profile);

  // Static triage: decide every fault site up front. Fault-list generation
  // is unaffected, so the non-pruned subset is identical to a triage-off
  // run over the same seed.
  // Static triage reasons about a single sequential instruction stream; on
  // an SMP machine a register another hart never reads can still change the
  // interleaving-visible state, so triage is conservatively disabled.
  if (config_.machine.num_harts > 1) {
    config_.triage = dataflow::TriageMode::kOff;
  }
  std::vector<dataflow::TriageDecision> decisions(faults_.size());
  if (config_.triage != dataflow::TriageMode::kOff) {
    dataflow::TriageOptions triage_options;
    triage_options.stack_top = config_.machine.ram_base + config_.machine.ram_size;
    S4E_TRY(triage, dataflow::StaticTriage::build(program_, triage_options));
    for (std::size_t i = 0; i < faults_.size(); ++i) {
      const FaultSpec& spec = faults_[i];
      switch (spec.target) {
        case FaultTarget::kGpr:
          decisions[i] = triage.gpr_fault(spec.reg);
          break;
        case FaultTarget::kMemory:
          break;  // the flipped byte lands in the hashed .data image
        case FaultTarget::kCode:
          decisions[i] = triage.code_fault(spec.address,
                                           spec.kind == FaultKind::kStuckAt,
                                           spec.bit, spec.stuck_value);
          break;
      }
    }
  }
  const bool skip_pruned = config_.triage == dataflow::TriageMode::kOn;

  vp::MachineConfig mutant_config = config_.machine;
  mutant_config.max_instructions =
      vp::hang_budget(result.golden_instructions, config_.hang_budget_factor,
                      config_.machine.max_instructions);

  // Shard selection: the fault list and triage decisions above cover the
  // *full* campaign (identical RNG sequence for every shard); only the
  // contiguous global index range [begin, end) is simulated here.
  const u64 total = faults_.size();
  const u64 begin = total * config_.shard_index / config_.shard_count;
  const u64 end = total * (config_.shard_index + 1) / config_.shard_count;
  const std::size_t count = static_cast<std::size_t>(end - begin);
  result.shard_begin = begin;
  result.total_faults = total;

  // Fan the independent mutant simulations out over the executor. Every
  // job writes only its own slot; the per-outcome counters and the
  // floating-point instruction total are aggregated afterwards by walking
  // the slots in submission order, so the CampaignResult is bit-identical
  // to the jobs=1 serial run regardless of scheduling — with or without
  // machine reuse.
  std::vector<MutantResult> slots(count);
  std::vector<std::optional<Error>> errors(count);
  progress_.begin(count);
  exec::CampaignExecutor executor(config_.jobs);
  // Telemetry shards are per worker lane (lock-free: each lane writes only
  // its own shard) and fold deterministically after the barrier.
  std::unique_ptr<obs::CampaignTelemetry> telemetry;
  if (config_.collect_metrics) {
    telemetry = std::make_unique<obs::CampaignTelemetry>(
        std::vector<std::string>{"masked", "sdc", "crash", "hang"},
        executor.jobs());
    telemetry->set_campaign(count, result.golden_instructions,
                            mutant_config.max_instructions);
  }
  const auto record = [&](unsigned worker, std::size_t index,
                          Result<MutantResult> mutant) {
    if (mutant.ok()) {
      const unsigned bucket = static_cast<unsigned>(mutant->outcome);
      // Statically decided mutants were never simulated; they count toward
      // the outcome histogram but not the run telemetry.
      if (telemetry != nullptr && !(skip_pruned && mutant->pruned)) {
        telemetry->record_run(worker, bucket, mutant->instructions,
                              !mutant->post_mortem.empty());
      }
      slots[index] = std::move(*mutant);
      progress_.record(bucket);
    } else {
      errors[index] = mutant.error();
      progress_.record(exec::CampaignProgress::kBuckets);  // count done only
    }
  };
  // Short-circuit for statically decided faults (triage on), and the
  // verify-mode cross-check for faults that *would* have been pruned.
  // These index the *global* fault list; `record` above takes the local
  // slot index within the shard.
  const auto synthesize = [&](std::size_t global) -> MutantResult {
    MutantResult mutant;
    mutant.spec = faults_[global];
    mutant.outcome = Outcome::kMasked;
    mutant.exit_code = result.golden_exit_code;
    mutant.pruned = true;
    mutant.prune_reason = decisions[global].reason;
    return mutant;
  };
  const auto finish = [&](std::size_t global,
                          Result<MutantResult> mutant) -> Result<MutantResult> {
    if (!mutant.ok() || !decisions[global].pruned) return mutant;
    mutant->pruned = true;
    mutant->prune_reason = decisions[global].reason;
    if (config_.triage == dataflow::TriageMode::kVerify &&
        mutant->outcome != Outcome::kMasked) {
      return Error(
          ErrorCode::kAnalysisError,
          format("triage verify mismatch: %s statically pruned as '%s' but "
                 "dynamically %s",
                 mutant->spec.to_string().c_str(),
                 mutant->prune_reason.c_str(),
                 std::string(fault::to_string(mutant->outcome)).c_str()));
    }
    return mutant;
  };
  if (config_.reuse_machines) {
    // One long-lived machine per worker lane, loaded and snapshotted on the
    // lane's first mutant; every run starts from a dirty-page restore with
    // a warm TB cache instead of a fresh build + full program load.
    std::vector<std::unique_ptr<vp::WorkerVm>> vms(executor.jobs());
    executor.run_affine(count, [&](unsigned worker, std::size_t index) {
      const std::size_t global = static_cast<std::size_t>(begin) + index;
      if (skip_pruned && decisions[global].pruned) {
        record(worker, index, synthesize(global));  // no VM needed
        return;
      }
      if (vms[worker] == nullptr) {
        auto vm = vp::WorkerVm::create(mutant_config, program_);
        if (!vm.ok()) {
          record(worker, index, vm.error());
          return;
        }
        vms[worker] = std::move(*vm);
      }
      record(worker, index,
             finish(global, run_mutant_on(vms[worker]->prepare(),
                                          faults_[global], result)));
    });
    for (const auto& vm : vms) {
      if (vm != nullptr) result.snapshot_stats += vm->stats();
    }
  } else {
    // Fresh machine per mutant, still lane-affine so the metric shards have
    // a stable worker index (slot determinism is unchanged).
    executor.run_affine(count, [&](unsigned worker, std::size_t index) {
      const std::size_t global = static_cast<std::size_t>(begin) + index;
      if (skip_pruned && decisions[global].pruned) {
        record(worker, index, synthesize(global));
        return;
      }
      record(worker, index,
             finish(global,
                    run_mutant(faults_[global], mutant_config, result)));
    });
  }

  result.mutants.reserve(slots.size());
  for (std::size_t index = 0; index < slots.size(); ++index) {
    if (errors[index].has_value()) return *errors[index];
    MutantResult& mutant = slots[index];
    ++result.outcome_counts[static_cast<unsigned>(mutant.outcome)];
    result.pruned_count += mutant.pruned ? 1 : 0;
    result.simulated_instructions +=
        static_cast<double>(mutant.instructions);
    result.mutants.push_back(std::move(mutant));
  }
  if (telemetry != nullptr) {
    if (config_.triage != dataflow::TriageMode::kOff) {
      telemetry->set_pruned(result.pruned_count);
    }
    result.metrics_json = telemetry->to_json();
  }
  return result;
}

double CampaignResult::informative_fraction(FaultTarget target) const {
  u64 total = 0;
  u64 informative = 0;
  for (const MutantResult& mutant : mutants) {
    if (mutant.spec.target != target) continue;
    ++total;
    informative += mutant.outcome != Outcome::kMasked;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(informative) /
                          static_cast<double>(total);
}

std::string CampaignResult::to_string() const {
  std::string out = "fault campaign\n";
  out += format("  golden: exit=%d, %llu instructions\n", golden_exit_code,
                static_cast<unsigned long long>(golden_instructions));
  out += format("  mutants simulated : %zu (%.0f instructions total)\n",
                mutants.size(), simulated_instructions);
  if (pruned_count > 0) {
    out += format("  statically pruned : %llu (%.1f%%)\n",
                  static_cast<unsigned long long>(pruned_count),
                  100.0 * static_cast<double>(pruned_count) /
                      static_cast<double>(std::max<u64>(mutants.size(), 1)));
  }
  const u64 total = std::max<u64>(mutants.size(), 1);
  for (unsigned i = 0; i < 4; ++i) {
    const auto outcome = static_cast<Outcome>(i);
    out += format("  %-7s : %llu  (%.1f%%)\n",
                  std::string(fault::to_string(outcome)).c_str(),
                  static_cast<unsigned long long>(outcome_counts[i]),
                  100.0 * static_cast<double>(outcome_counts[i]) /
                      static_cast<double>(total));
  }
  out += format("  informative by target: gpr %.1f%%, mem %.1f%%, code "
                "%.1f%%\n",
                100.0 * informative_fraction(FaultTarget::kGpr),
                100.0 * informative_fraction(FaultTarget::kMemory),
                100.0 * informative_fraction(FaultTarget::kCode));
  return out;
}

}  // namespace s4e::fault
