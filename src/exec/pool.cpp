#include "exec/pool.hpp"

#include <algorithm>
#include <utility>

namespace s4e::exec {

unsigned ThreadPool::resolve_jobs(unsigned requested) noexcept {
  if (requested == 0) return std::max(1u, std::thread::hardware_concurrency());
  // A negative job count cast to unsigned would ask for billions of threads
  // and abort in std::thread; no host benefits from more than this anyway.
  return std::min(requested, 4096u);
}

ThreadPool::ThreadPool(const Options& options)
    : queue_capacity_(std::max<std::size_t>(1, options.queue_capacity)) {
  const unsigned threads = resolve_jobs(options.threads);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    space_available_.wait(
        lock, [this] { return shutdown_ || queue_.size() < queue_capacity_; });
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_available_.notify_all();
  space_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    space_available_.notify_one();
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace s4e::exec
