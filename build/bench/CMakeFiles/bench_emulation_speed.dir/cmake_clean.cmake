file(REMOVE_RECURSE
  "CMakeFiles/bench_emulation_speed.dir/bench_emulation_speed.cpp.o"
  "CMakeFiles/bench_emulation_speed.dir/bench_emulation_speed.cpp.o.d"
  "bench_emulation_speed"
  "bench_emulation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emulation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
