// Abstract view of the program image for constant-folding loads.
//
// A load folds to the bytes in the loadable image only when every address
// it may access (a) lies fully inside a section and (b) is outside every
// *dirty* range — the union of all abstract store targets collected in a
// first analysis pass. Stack-relative stores dirty nothing: the stack grows
// from the top of RAM, disjoint from the loaded sections by the memory-map
// convention (Machine::load_program places sp at ram end), and the analysis
// never folds loads through stack addresses anyway.
//
// Usage is two-pass: pass A runs with loads disabled (every load yields
// top) and calls record_store() over the final block states; pass B runs
// with loads enabled against the collected dirty set.
#pragma once

#include <utility>
#include <vector>

#include "asm/program.hpp"
#include "dataflow/absvalue.hpp"

namespace s4e::dataflow {

class MemModel {
 public:
  MemModel() = default;  // image-less: every load yields top
  explicit MemModel(const assembler::Program& program) : program_(&program) {}

  void enable_loads() { loads_enabled_ = true; }
  bool loads_enabled() const noexcept { return loads_enabled_; }

  // Register an abstract store of `size` bytes at `addr`.
  void record_store(const AbsValue& addr, u32 size);

  // True when no recorded store may overlap [lo, hi] (canonical addresses).
  bool range_clean(i64 lo, i64 hi) const;

  bool all_dirty() const noexcept { return all_dirty_; }

  // Abstract result of an aligned or unaligned load of `size` bytes.
  AbsValue load(const AbsValue& addr, u32 size, bool sign_extend) const;

 private:
  const assembler::Program* program_ = nullptr;
  bool loads_enabled_ = false;
  bool all_dirty_ = false;
  std::vector<std::pair<i64, i64>> dirty_;  // inclusive canonical ranges
};

}  // namespace s4e::dataflow
