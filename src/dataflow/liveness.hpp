// Backward may-live register analysis, used by the dead-write lint check.
//
// Conservative at ABI boundaries: a return leaves the result and every
// callee-saved register live (the caller may observe them), an exit ecall
// leaves the argument registers live (the environment reads them), a call
// reads the argument registers and sp. An unresolved indirect terminator
// treats everything as live, so no dead-write finding can come from code
// whose continuation is unknown.
#pragma once

#include "cfg/cfg.hpp"
#include "dataflow/regstate.hpp"
#include "isa/defuse.hpp"

namespace s4e::dataflow {

// sp, gp, tp, s0/s1, s2-s11, a0/a1: observable after a return.
inline constexpr u32 kReturnLiveMask =
    reg_bit(2) | reg_bit(3) | reg_bit(4) | reg_bit(8) | reg_bit(9) |
    (0x3ffu << 18) | reg_bit(10) | reg_bit(11);

// a0-a7 plus the preserved pointers: observable at an exit ecall/ebreak.
inline constexpr u32 kExitLiveMask =
    (0xffu << 10) | reg_bit(2) | reg_bit(3) | reg_bit(4);

// What a callee may read at a call site: arguments, sp, gp, tp.
inline constexpr u32 kCallReadMask =
    (0xffu << 10) | reg_bit(2) | reg_bit(3) | reg_bit(4);

class Liveness {
 public:
  static constexpr bool kForward = false;
  using State = u32;  // bitmask of may-live GPRs

  struct Options {
    // Per-call-block effects from interprocedural summaries (keyed by the
    // kCall block's id); null/missing entries use the ABI assumption.
    const std::map<cfg::BlockId, CallEffect>* call_effects = nullptr;
  };

  Liveness() = default;
  explicit Liveness(const Options& options) : options_(options) {}

  State boundary(const cfg::Function& fn, const cfg::BasicBlock& block) const {
    (void)fn;
    switch (block.terminator) {
      case cfg::Terminator::kReturn:
        return kReturnLiveMask;
      case cfg::Terminator::kExit:
        return kExitLiveMask;
      default:
        return ~u32{0};  // unresolved indirect or truncated path
    }
  }

  // Live set adjustment at the bottom of a block (before walking its
  // instructions backward). Shared with the lint replay. With a summary
  // effect, the kill set is the callee's must-write registers and the gen
  // set its may-read registers (plus sp, which every call consumes for the
  // callee frame); without one, the ABI assumption gens the argument
  // registers and kills nothing.
  static State exit_adjust(const cfg::BasicBlock& block, State live,
                           const CallEffect* effect = nullptr) {
    if (block.terminator != cfg::Terminator::kCall) return live;
    if (effect == nullptr) return live | kCallReadMask;
    return (live & ~effect->must_write) | effect->may_read | reg_bit(2);
  }

  const CallEffect* call_effect(const cfg::BasicBlock& block) const {
    if (options_.call_effects == nullptr) return nullptr;
    auto it = options_.call_effects->find(block.id);
    return it == options_.call_effects->end() ? nullptr : &it->second;
  }

  State transfer(const cfg::Function& fn, const cfg::BasicBlock& block,
                 State live) const {
    (void)fn;
    live = exit_adjust(block, live, call_effect(block));
    for (auto it = block.insns.rbegin(); it != block.insns.rend(); ++it) {
      const isa::DefUse du = isa::def_use(*it);
      live = (live & ~du.writes) | du.reads;
    }
    return live & ~u32{1};  // x0 is never live
  }

  bool join(State& into, const State& from, bool /*widen*/) const {
    const State merged = into | from;
    if (merged == into) return false;
    into = merged;
    return true;
  }

  bool edge_feasible(const cfg::Function&, const cfg::BasicBlock&,
                     const State&, const cfg::Edge&) const {
    return true;  // unused in the backward direction
  }

 private:
  Options options_;
};

}  // namespace s4e::dataflow
