#include "exec/campaign_executor.hpp"

#include <algorithm>

namespace s4e::exec {

void CampaignExecutor::run(std::size_t count,
                           const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  ThreadPool::Options options;
  options.threads = jobs_;
  // A shallow backlog is enough to keep every worker fed; submit()'s
  // backpressure then caps the queue so a million-mutant campaign never
  // materialises a million closures at once.
  options.queue_capacity = std::max<std::size_t>(2 * jobs_, 16);
  ThreadPool pool(options);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&job, i] { job(i); });
  }
  pool.wait_idle();  // rethrows the first captured job exception
}

void CampaignExecutor::run_affine(
    std::size_t count, const std::function<void(unsigned, std::size_t)>& job) {
  if (count == 0) return;
  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(0, i);
    return;
  }
  ThreadPool::Options options;
  options.threads = jobs_;
  options.queue_capacity = jobs_;  // exactly one long-lived task per lane
  ThreadPool pool(options);
  std::atomic<std::size_t> next{0};
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
  for (unsigned lane = 0; lane < lanes; ++lane) {
    pool.submit([&job, &next, lane, count] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        job(lane, i);
      }
    });
  }
  pool.wait_idle();  // rethrows the first captured job exception
}

}  // namespace s4e::exec
