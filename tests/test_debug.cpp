// GDB remote-debug subsystem tests (ctest -L debug; also tsan-labeled —
// the loopback test runs a real client thread against the TCP transport):
//   * RSP packet codec: checksum, framing, escaping, RLE, incremental
//     decoding across arbitrary chunk boundaries
//   * Machine run control: breakpoints (cold and hot translation blocks),
//     watchpoints (write/read/access), single-step, bounded slices,
//     interrupt requests — and that exit callbacks fire exactly once
//   * N x step() == run(N) equivalence, property-tested over torture
//     programs, including across a snapshot save/restore mid-stepping
//   * a scripted in-process RSP session covering the full attach ->
//     breakpoint -> watchpoint -> step -> detach acceptance flow
//   * the same flow over a real loopback TCP connection (port 0)
//   * `s4e-run --gdb=0` end to end: attach to the spawned tool through the
//     port it announces, detach, and watch it free-run to completion
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "asm/assembler.hpp"
#include "common/hex.hpp"
#include "debug/rsp.hpp"
#include "debug/server.hpp"
#include "debug/target.hpp"
#include "debug/tcp.hpp"
#include "obs/trace.hpp"
#include "testgen/testgen.hpp"
#include "vp/machine.hpp"
#include "vp/runner.hpp"
#include "vp/snapshot.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace s4e::debug {
namespace {

using vp::Machine;
using vp::RunResult;
using vp::StopReason;
using vp::WatchKind;

assembler::Program assemble_or_die(const char* source) {
  auto program = assembler::assemble(source);
  EXPECT_TRUE(program.ok());
  return *program;
}

u32 symbol(const assembler::Program& program, const std::string& name) {
  auto it = program.symbols.find(name);
  EXPECT_NE(it, program.symbols.end()) << name;
  return it == program.symbols.end() ? 0 : it->second;
}

// Counts a bounded loop, stores the total to `counter`, prints "ok",
// exits 3. Symbols mark the loop head and the watched data word.
const char* kLoopSource = R"(
_start:
    li t0, 0
    li t1, 25
loop_head:
    addi t0, t0, 1
    bne t0, t1, loop_head
    la t2, counter
    sw t0, 0(t2)
    lw t3, 0(t2)
    li t0, 0x10000000
    li t1, 111
    sw t1, 0(t0)
    li t1, 107
    sw t1, 0(t0)
    li a0, 3
    li a7, 93
    ecall
.data
counter:
    .word 0
)";

// --------------------------------------------------------------------------
// Packet codec.

TEST(RspCodec, ChecksumAndFraming) {
  EXPECT_EQ(rsp_checksum(""), "00");
  EXPECT_EQ(rsp_frame("OK"), "$OK#9a");
  EXPECT_EQ(rsp_frame(""), "$#00");
}

TEST(RspCodec, EscapesFramingCharacters) {
  const std::string wire = rsp_frame("a#b$c}d*e");
  // The escaped body must not contain a bare '#' before the checksum mark.
  const std::size_t hash = wire.rfind('#');
  EXPECT_EQ(wire.find('#'), hash);
  PacketDecoder decoder;
  decoder.feed(wire);
  ASSERT_TRUE(decoder.has_event());
  auto event = decoder.next_event();
  EXPECT_EQ(event.kind, PacketDecoder::EventKind::kPacket);
  EXPECT_EQ(event.payload, "a#b$c}d*e");
}

TEST(RspCodec, RleRoundTripsLongRuns) {
  const std::string payload(200, '0');
  const std::string wire = rsp_frame_rle(payload);
  EXPECT_LT(wire.size(), payload.size() / 2);
  PacketDecoder decoder;
  decoder.feed(wire);
  ASSERT_TRUE(decoder.has_event());
  auto event = decoder.next_event();
  ASSERT_EQ(event.kind, PacketDecoder::EventKind::kPacket);
  EXPECT_EQ(rsp_rle_expand(event.payload), payload);
}

TEST(RspCodec, RleNeverEmitsIllegalCountCharacters) {
  // Run lengths 1..120 of several characters: every produced count char must
  // be printable and must not collide with framing bytes.
  for (char c : {'0', 'f', 'x'}) {
    for (std::size_t n = 1; n <= 120; ++n) {
      const std::string payload(n, c);
      const std::string wire = rsp_frame_rle(payload);
      // Walk the body sequentially: a '*' marks a run, and the next byte is
      // its count (which may itself be '*', so consume it explicitly).
      const std::size_t body_end = wire.rfind('#');
      for (std::size_t i = 1; i < body_end; ++i) {
        if (wire[i] != '*') continue;
        ASSERT_LT(i + 1, body_end) << n;
        const char count = wire[++i];
        EXPECT_GE(count, 29 + 3) << n;
        EXPECT_LE(count, '~') << n;
        EXPECT_NE(count, '#') << n;
        EXPECT_NE(count, '$') << n;
        EXPECT_NE(count, '+') << n;
        EXPECT_NE(count, '-') << n;
      }
      PacketDecoder decoder;
      decoder.feed(wire);
      ASSERT_TRUE(decoder.has_event());
      EXPECT_EQ(rsp_rle_expand(decoder.next_event().payload), payload);
    }
  }
}

TEST(RspCodec, DecodesAcrossChunkBoundaries) {
  const std::string wire = rsp_frame("qSupported:multiprocess+") + "+" +
                           rsp_frame("g") + "\x03";
  for (std::size_t chunk = 1; chunk <= 5; ++chunk) {
    PacketDecoder decoder;
    for (std::size_t i = 0; i < wire.size(); i += chunk) {
      decoder.feed(wire.substr(i, chunk));
    }
    ASSERT_TRUE(decoder.has_event());
    auto first = decoder.next_event();
    EXPECT_EQ(first.kind, PacketDecoder::EventKind::kPacket);
    EXPECT_EQ(first.payload, "qSupported:multiprocess+");
    EXPECT_EQ(decoder.next_event().kind, PacketDecoder::EventKind::kAck);
    EXPECT_EQ(decoder.next_event().payload, "g");
    EXPECT_EQ(decoder.next_event().kind,
              PacketDecoder::EventKind::kInterrupt);
    EXPECT_FALSE(decoder.has_event());
  }
}

TEST(RspCodec, BadChecksumYieldsBadPacketEvent) {
  PacketDecoder decoder;
  decoder.feed("$OK#00");
  ASSERT_TRUE(decoder.has_event());
  EXPECT_EQ(decoder.next_event().kind, PacketDecoder::EventKind::kBadPacket);
  // The decoder recovers: the next well-formed packet still parses.
  decoder.feed(rsp_frame("OK"));
  ASSERT_TRUE(decoder.has_event());
  EXPECT_EQ(decoder.next_event().payload, "OK");
}

// --------------------------------------------------------------------------
// Machine run control.

TEST(RunControl, BreakpointStopsBeforeExecuting) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 head = symbol(program, "loop_head");
  machine.add_breakpoint(head);

  RunResult stop = machine.run();
  EXPECT_EQ(stop.reason, StopReason::kDebugBreak);
  EXPECT_EQ(stop.final_pc, head);
  EXPECT_EQ(stop.debug_addr, head);
  EXPECT_EQ(machine.cpu().pc, head);
  // t0 still 0: the breakpointed instruction has not executed.
  EXPECT_EQ(machine.cpu().gpr[5], 0u);

  machine.remove_breakpoint(head);
  RunResult done = machine.run();
  EXPECT_TRUE(done.normal_exit());
  EXPECT_EQ(done.exit_code, 3);
  EXPECT_EQ(machine.uart()->tx_log(), "ok");
}

TEST(RunControl, BreakpointInsertedIntoHotBlockStillHits) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  // Warm the loop's translation block, then plant a breakpoint inside it.
  RunResult warm = machine.run_slice(30);
  ASSERT_EQ(warm.reason, StopReason::kDebugSlice);
  const u32 head = symbol(program, "loop_head");
  machine.add_breakpoint(head);
  RunResult stop = machine.run();
  EXPECT_EQ(stop.reason, StopReason::kDebugBreak);
  EXPECT_EQ(stop.final_pc, head);
}

TEST(RunControl, ResumeStepsOverBreakpointAtCurrentPc) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 head = symbol(program, "loop_head");
  machine.add_breakpoint(head);
  ASSERT_EQ(machine.run().reason, StopReason::kDebugBreak);

  // step() executes the breakpointed instruction instead of re-reporting.
  RunResult stepped = machine.step();
  EXPECT_EQ(stepped.reason, StopReason::kDebugStep);
  EXPECT_EQ(machine.cpu().gpr[5], 1u);  // t0 incremented
  // Continuing hits the same breakpoint on the next loop iteration.
  RunResult again = machine.run();
  EXPECT_EQ(again.reason, StopReason::kDebugBreak);
  EXPECT_EQ(machine.cpu().gpr[5], 1u);
}

TEST(RunControl, WatchpointKindsAndOverlap) {
  auto program = assemble_or_die(kLoopSource);
  const u32 counter = symbol(program, "counter");

  {  // Write watch: stops after the sw, with the faulting address.
    Machine machine;
    ASSERT_TRUE(machine.load_program(program).ok());
    machine.add_watchpoint(counter, 4, WatchKind::kWrite);
    RunResult stop = machine.run();
    EXPECT_EQ(stop.reason, StopReason::kDebugWatch);
    EXPECT_EQ(stop.debug_addr, counter);
    EXPECT_EQ(stop.watch_kind, WatchKind::kWrite);
    // GDB semantics: the write has landed by the time the stop reports.
    u32 value = 0;
    ASSERT_TRUE(machine.bus().ram_read(counter, &value, 4).ok());
    EXPECT_EQ(value, 25u);
    // The read of `counter` later must not re-trigger the write watch.
    RunResult done = machine.run();
    EXPECT_TRUE(done.normal_exit());
  }
  {  // Read watch: triggers on the lw, not the sw.
    Machine machine;
    ASSERT_TRUE(machine.load_program(program).ok());
    machine.add_watchpoint(counter, 4, WatchKind::kRead);
    RunResult stop = machine.run();
    EXPECT_EQ(stop.reason, StopReason::kDebugWatch);
    EXPECT_EQ(stop.watch_kind, WatchKind::kRead);
    u32 value = 0;
    ASSERT_TRUE(machine.bus().ram_read(counter, &value, 4).ok());
    EXPECT_EQ(value, 25u);  // the store already happened
  }
  {  // Access watch on a 1-byte range inside the word still overlaps.
    Machine machine;
    ASSERT_TRUE(machine.load_program(program).ok());
    machine.add_watchpoint(counter + 2, 1, WatchKind::kAccess);
    RunResult stop = machine.run();
    EXPECT_EQ(stop.reason, StopReason::kDebugWatch);
    EXPECT_EQ(stop.watch_kind, WatchKind::kAccess);
  }
  {  // Removed watchpoints never fire.
    Machine machine;
    ASSERT_TRUE(machine.load_program(program).ok());
    machine.add_watchpoint(counter, 4, WatchKind::kWrite);
    EXPECT_TRUE(machine.remove_watchpoint(counter, 4, WatchKind::kWrite));
    EXPECT_FALSE(machine.remove_watchpoint(counter, 4, WatchKind::kWrite));
    EXPECT_TRUE(machine.run().normal_exit());
  }
}

TEST(RunControl, SliceAndInterruptRequests) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  RunResult slice = machine.run_slice(5);
  EXPECT_EQ(slice.reason, StopReason::kDebugSlice);
  EXPECT_EQ(slice.instructions, 5u);

  machine.request_debug_stop();
  RunResult interrupted = machine.run();
  EXPECT_EQ(interrupted.reason, StopReason::kDebugInterrupt);

  // The request is one-shot: the machine then runs to completion.
  RunResult done = machine.run();
  EXPECT_TRUE(done.normal_exit());
  EXPECT_EQ(done.exit_code, 3);
}

TEST(RunControl, ExitCallbacksFireOnceDespiteDebugStops) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* sink = open_memstream(&buffer, &size);
  ASSERT_NE(sink, nullptr);
  obs::JsonlTracePlugin trace(sink, 1);  // budget 1: only meta + exit lines
  trace.attach(machine.vm_handle());

  machine.add_breakpoint(symbol(program, "loop_head"));
  ASSERT_EQ(machine.run().reason, StopReason::kDebugBreak);
  machine.clear_breakpoints();
  ASSERT_EQ(machine.run_slice(3).reason, StopReason::kDebugSlice);
  ASSERT_TRUE(machine.run().normal_exit());

  std::fclose(sink);
  std::string text(buffer, size);
  free(buffer);
  std::size_t exits = 0;
  for (std::size_t at = text.find("\"exit\""); at != std::string::npos;
       at = text.find("\"exit\"", at + 1)) {
    ++exits;
  }
  EXPECT_EQ(exits, 1u);
}

// --------------------------------------------------------------------------
// N x step() == run(N), property-tested over torture programs.

struct MachineDigest {
  std::array<u32, isa::kGprCount> gpr{};
  u32 pc = 0;
  u64 cycles = 0;
  u64 memory_hash = 0;
  std::string uart;
  u32 mepc = 0;
  u32 mcause = 0;
  u32 mstatus = 0;

  bool operator==(const MachineDigest&) const = default;
};

MachineDigest digest(Machine& machine, const assembler::Program& program) {
  MachineDigest d;
  d.gpr = machine.cpu().gpr;
  d.pc = machine.cpu().pc;
  d.cycles = machine.cycles();
  d.memory_hash = vp::data_memory_hash(machine, program);
  d.uart = machine.uart()->tx_log();
  d.mepc = machine.cpu().csr.mepc;
  d.mcause = machine.cpu().csr.mcause;
  d.mstatus = machine.cpu().csr.mstatus;
  return d;
}

class StepEquivalenceSeed : public ::testing::TestWithParam<u64> {};

TEST_P(StepEquivalenceSeed, SteppingMatchesFreeRunning) {
  testgen::TortureConfig config;
  config.seed = GetParam();
  config.programs = 3;
  for (const auto& test : testgen::torture_suite(config)) {
    auto program = assembler::assemble(test.source);
    ASSERT_TRUE(program.ok()) << test.name;

    Machine golden;
    ASSERT_TRUE(golden.load_program(*program).ok());
    const RunResult golden_result = golden.run();
    ASSERT_TRUE(golden_result.normal_exit()) << test.name;
    const MachineDigest want = digest(golden, *program);

    // Step the whole program, snapshotting partway through; the restored
    // machine must replay the remaining steps to the identical end state.
    Machine stepper;
    ASSERT_TRUE(stepper.load_program(*program).ok());
    vp::Snapshot snap;
    u64 steps = 0;
    u64 snap_at = golden_result.instructions / 2;
    bool saved = false;
    RunResult last;
    for (;;) {
      if (steps == snap_at) {
        stepper.save_state(snap);
        saved = true;
      }
      last = stepper.step();
      if (last.reason != StopReason::kDebugStep) break;
      ++steps;
      ASSERT_LT(steps, golden_result.instructions + 8) << test.name;
    }
    EXPECT_TRUE(last.normal_exit()) << test.name;
    EXPECT_EQ(last.exit_code, golden_result.exit_code) << test.name;
    EXPECT_EQ(steps + 1, golden_result.instructions) << test.name;
    EXPECT_EQ(digest(stepper, *program), want) << test.name;

    ASSERT_TRUE(saved) << test.name;
    stepper.restore_state(snap);
    RunResult rest;
    for (;;) {
      rest = stepper.step();
      if (rest.reason != StopReason::kDebugStep) break;
    }
    EXPECT_TRUE(rest.normal_exit()) << test.name;
    EXPECT_EQ(digest(stepper, *program), want) << test.name << " restored";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepEquivalenceSeed,
                         ::testing::Values(11u, 47u, 90210u));

// --------------------------------------------------------------------------
// Scripted in-process RSP session.

// A ByteChannel fed from a script: read_blocking() pops pre-recorded client
// chunks; read_poll() pops a separate async queue (the Ctrl-C path); writes
// accumulate into a transcript the test decodes afterwards.
class ScriptChannel final : public ByteChannel {
 public:
  void push(std::string bytes) { script_.push_back(std::move(bytes)); }
  void push_async(std::string bytes) { async_.push_back(std::move(bytes)); }

  std::string read_blocking() override {
    if (next_ >= script_.size()) return {};  // script over = peer hung up
    return script_[next_++];
  }
  std::string read_poll() override {
    if (async_next_ >= async_.size()) return {};
    return async_[async_next_++];
  }
  bool write_all(std::string_view bytes) override {
    transcript_.append(bytes);
    return true;
  }

  // Decode every packet the server sent, RLE-expanded.
  std::vector<std::string> replies() const {
    PacketDecoder decoder;
    decoder.feed(transcript_);
    std::vector<std::string> out;
    while (decoder.has_event()) {
      auto event = decoder.next_event();
      if (event.kind == PacketDecoder::EventKind::kPacket) {
        out.push_back(rsp_rle_expand(event.payload));
      }
    }
    return out;
  }

 private:
  std::vector<std::string> script_;
  std::vector<std::string> async_;
  std::size_t next_ = 0;
  std::size_t async_next_ = 0;
  std::string transcript_;
};

TEST(RspSession, FullAcceptanceFlowScripted) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 head = symbol(program, "loop_head");
  const u32 counter = symbol(program, "counter");

  ScriptChannel channel;
  // Ack-mode handshake: the client ack ('+') for each server reply rides in
  // front of the next command chunk.
  channel.push(rsp_frame("qSupported:swbreak+;hwbreak+"));
  channel.push("+" + rsp_frame("QStartNoAckMode"));
  channel.push("+");  // ack for the OK; no-ack mode from here on
  channel.push(rsp_frame("qXfer:features:read:target.xml:0,ffb"));
  channel.push(rsp_frame("?"));
  channel.push(rsp_frame("Z0," + hex32(head) + ",4"));
  channel.push(rsp_frame("c"));
  channel.push(rsp_frame("g"));
  channel.push(rsp_frame("m" + hex32(counter) + ",4"));
  channel.push(rsp_frame("Z2," + hex32(counter) + ",4"));
  channel.push(rsp_frame("z0," + hex32(head) + ",4"));
  channel.push(rsp_frame("c"));
  channel.push(rsp_frame("s"));
  channel.push(rsp_frame("D"));

  DebugTarget target(machine);
  RspServer server(target, channel);
  const auto outcome = server.serve();
  EXPECT_EQ(outcome, RspServer::ServeResult::kDetached);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 13u);
  // qSupported advertises the feature set.
  EXPECT_NE(replies[0].find("PacketSize="), std::string::npos);
  EXPECT_NE(replies[0].find("qXfer:features:read+"), std::string::npos);
  EXPECT_NE(replies[0].find("swbreak+"), std::string::npos);
  EXPECT_EQ(replies[1], "OK");  // QStartNoAckMode
  // Target XML fits one chunk ('l' prefix) and names the architecture.
  EXPECT_EQ(replies[2].front(), 'l');
  EXPECT_NE(replies[2].find("riscv:rv32"), std::string::npos);
  EXPECT_EQ(replies[3], "S05");  // halted at entry
  EXPECT_EQ(replies[4], "OK");   // Z0
  EXPECT_EQ(replies[5], "T05swbreak:;");

  // `g`: all 33 registers, matching the machine state at the breakpoint —
  // the two `li`s before loop_head have run, the loop body has not.
  ASSERT_EQ(replies[6].size(), 33u * 8u);
  EXPECT_EQ(replies[6].substr(0, 8), hex32_le(0));         // x0
  EXPECT_EQ(replies[6].substr(5 * 8, 8), hex32_le(0));     // t0: untouched
  EXPECT_EQ(replies[6].substr(6 * 8, 8), hex32_le(25));    // t1: loop bound
  EXPECT_EQ(replies[6].substr(32 * 8, 8), hex32_le(head));  // pc

  // `m` of the counter word: still zero at the breakpoint.
  EXPECT_EQ(replies[7], "00000000");
  EXPECT_EQ(replies[8], "OK");  // Z2
  EXPECT_EQ(replies[9], "OK");  // z0
  // The continue ran the loop to the store and stopped on the write watch.
  EXPECT_EQ(replies[10], "T05watch:" + hex32(counter) + ";");
  u32 value = 0;
  ASSERT_TRUE(machine.bus().ram_read(counter, &value, 4).ok());
  EXPECT_EQ(value, 25u);

  EXPECT_EQ(replies[11], "S05");  // `s`: exactly one instruction
  EXPECT_EQ(replies[12], "OK");   // D

  // Detach leaves a resumable machine; free-running finishes the program.
  RunResult done = machine.run();
  EXPECT_TRUE(done.normal_exit());
  EXPECT_EQ(done.exit_code, 3);
  EXPECT_EQ(machine.uart()->tx_log(), "ok");
}

TEST(RspSession, StepReplyReflectsSingleInstruction) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  ScriptChannel channel;
  channel.push(rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(rsp_frame("s"));
  channel.push(rsp_frame("p20"));  // read the PC (regnum 0x20)
  channel.push(rsp_frame("k"));

  DebugTarget target(machine);
  RspServer server(target, channel);
  EXPECT_EQ(server.serve(), RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[1], "S05");
  // One `li` executed: the machine sits on the second instruction.
  EXPECT_EQ(replies[2], hex32_le(machine.cpu().pc));
}

TEST(RspSession, CtrlCInterruptsARunningProgram) {
  // Infinite loop: only the interrupt can stop it.
  auto program = assemble_or_die(R"(
_start:
    j _start
)");
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  ScriptChannel channel;
  channel.push(rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(rsp_frame("c"));
  channel.push_async("\x03");  // arrives while the machine runs
  channel.push(rsp_frame("k"));

  DebugTarget target(machine);
  target.set_slice(64);  // poll often so the test is fast
  RspServer server(target, channel);
  EXPECT_EQ(server.serve(), RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1], "S02");  // SIGINT stop reply
}

TEST(RspSession, RegisterAndMemoryWritesLand) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 counter = symbol(program, "counter");

  ScriptChannel channel;
  channel.push(rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(rsp_frame("P5=" + hex32_le(0xdeadbeef)));  // t0 = x5
  channel.push(rsp_frame("M" + hex32(counter) + ",4:" + "aabbccdd"));
  channel.push(rsp_frame("m" + hex32(counter) + ",4"));
  channel.push(rsp_frame("X"));  // unsupported -> empty reply
  channel.push(rsp_frame("k"));

  DebugTarget target(machine);
  RspServer server(target, channel);
  EXPECT_EQ(server.serve(), RspServer::ServeResult::kKilled);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 5u);
  EXPECT_EQ(replies[1], "OK");
  EXPECT_EQ(machine.cpu().gpr[5], 0xdeadbeefu);
  EXPECT_EQ(replies[2], "OK");
  EXPECT_EQ(replies[3], "aabbccdd");
  EXPECT_EQ(replies[4], "");
}

TEST(RspSession, ProgramExitReportsWStatus) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());

  ScriptChannel channel;
  channel.push(rsp_frame("QStartNoAckMode"));
  channel.push("+");
  channel.push(rsp_frame("c"));
  channel.push(rsp_frame("D"));

  DebugTarget target(machine);
  RspServer server(target, channel);
  // The program finished under the debugger; detach maps to kExited.
  EXPECT_EQ(server.serve(), RspServer::ServeResult::kExited);
  EXPECT_FALSE(server.last_stop().debug_stop());
  EXPECT_EQ(server.last_stop().exit_code, 3);

  const auto replies = channel.replies();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[1], "W03");  // exit code 3
}

// --------------------------------------------------------------------------
// Loopback TCP transport.

// Minimal blocking client used by the test thread.
class TestClient {
 public:
  explicit TestClient(u16 port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void send_raw(std::string_view bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  // Send a framed command and return the server's (expanded) reply payload,
  // consuming acks. `ack` acknowledges the reply when still in ack mode.
  std::string transact(const std::string& payload, bool ack) {
    send_raw(rsp_frame(payload));
    for (;;) {
      while (decoder_.has_event()) {
        auto event = decoder_.next_event();
        if (event.kind == PacketDecoder::EventKind::kPacket) {
          if (ack) send_raw("+");
          return rsp_rle_expand(event.payload);
        }
      }
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) return "<closed>";
      decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  PacketDecoder decoder_;
};

TEST(TcpTransport, LoopbackSessionOnEphemeralPort) {
  auto program = assemble_or_die(kLoopSource);
  Machine machine;
  ASSERT_TRUE(machine.load_program(program).ok());
  const u32 head = symbol(program, "loop_head");

  std::string error;
  auto listener = TcpListener::listen_loopback(0, error);
  ASSERT_NE(listener, nullptr) << error;
  ASSERT_NE(listener->port(), 0) << "ephemeral port must be resolved";

  std::thread client_thread([port = listener->port(), head] {
    TestClient client(port);
    ASSERT_TRUE(client.connected());
    EXPECT_NE(client.transact("qSupported", true).find("PacketSize="),
              std::string::npos);
    EXPECT_EQ(client.transact("QStartNoAckMode", true), "OK");
    EXPECT_EQ(client.transact("Z0," + hex32(head) + ",4", false), "OK");
    EXPECT_EQ(client.transact("c", false), "T05swbreak:;");
    const std::string regs = client.transact("g", false);
    EXPECT_EQ(regs.size(), 33u * 8u);
    EXPECT_EQ(regs.substr(32 * 8, 8), hex32_le(head));
    EXPECT_EQ(client.transact("D", false), "OK");
  });

  auto channel = listener->accept_one(error);
  ASSERT_NE(channel, nullptr) << error;
  DebugTarget target(machine);
  RspServer server(target, *channel);
  EXPECT_EQ(server.serve(), RspServer::ServeResult::kDetached);
  client_thread.join();

  EXPECT_EQ(machine.cpu().pc, head);
  EXPECT_TRUE(machine.run().normal_exit());
}

TEST(TcpTransport, AcceptDeadlinePassesWithoutClient) {
  std::string error;
  auto listener = TcpListener::listen_loopback(0, error);
  ASSERT_NE(listener, nullptr) << error;
  bool timed_out = false;
  auto channel = listener->accept_one_for(50, error, timed_out);
  EXPECT_EQ(channel, nullptr);
  EXPECT_TRUE(timed_out);
  EXPECT_TRUE(error.empty()) << error;
}

TEST(TcpTransport, ReadDeadlineDistinguishesIdleFromClosedPeer) {
  std::string error;
  auto listener = TcpListener::listen_loopback(0, error);
  ASSERT_NE(listener, nullptr) << error;
  auto client = TcpChannel::connect_loopback(listener->port(), error);
  ASSERT_NE(client, nullptr) << error;
  bool timed_out = false;
  auto server = listener->accept_one_for(2000, error, timed_out);
  ASSERT_NE(server, nullptr) << error;

  // Idle peer: deadline passes, timed_out set — caller's loop stays live.
  EXPECT_TRUE(server->read_for(50, timed_out).empty());
  EXPECT_TRUE(timed_out);

  // Data arrives within the deadline: returned without the flag.
  ASSERT_TRUE(client->write_all("ping\n"));
  EXPECT_EQ(server->read_for(2000, timed_out), "ping\n");
  EXPECT_FALSE(timed_out);

  // Peer vanishes: empty *without* timed_out means close, not idleness.
  client.reset();
  EXPECT_TRUE(server->read_for(2000, timed_out).empty());
  EXPECT_FALSE(timed_out);
}

TEST(TcpTransport, ConnectLoopbackReportsRefusedPort) {
  // Bind an ephemeral port, then release it: a connect to the now-dead
  // port must fail with a message rather than hang.
  std::string error;
  u16 dead_port = 0;
  {
    auto listener = TcpListener::listen_loopback(0, error);
    ASSERT_NE(listener, nullptr) << error;
    dead_port = listener->port();
  }
  auto channel = TcpChannel::connect_loopback(dead_port, error);
  EXPECT_EQ(channel, nullptr);
  EXPECT_FALSE(error.empty());
}

#ifdef S4E_TOOL_DIR
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Poll `path` until `needle` shows up (the tool announces its port / the
// guest finishes asynchronously). ~5 s cap keeps a wedged tool from hanging
// the suite.
bool wait_for(const std::string& path, const std::string& needle,
              std::string& content) {
  for (int i = 0; i < 500; ++i) {
    content = slurp(path);
    if (content.find(needle) != std::string::npos) return true;
    usleep(10'000);
  }
  return false;
}

TEST(TcpTransport, S4eRunGdbFlagEndToEnd) {
  const std::string base =
      ::testing::TempDir() + "/" + std::to_string(getpid()) + "_gdbcli";
  const std::string elf = base + ".elf";
  const std::string out_path = base + ".out";
  const std::string err_path = base + ".err";
  const std::string tools = S4E_TOOL_DIR;
  ASSERT_EQ(std::system((tools + "/s4e-as --workload lock_ctrl -o " + elf)
                            .c_str()),
            0);

  // Launch detached with --gdb=0; the tool prints the resolved port on
  // stderr before blocking in accept().
  const std::string launch = tools + "/s4e-run " + elf +
                             " --uart-input 1234 --gdb=0 >" + out_path +
                             " 2>" + err_path + " & echo $!";
  std::FILE* pipe = popen(launch.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char pid_line[64] = {};
  ASSERT_NE(std::fgets(pid_line, sizeof pid_line, pipe), nullptr);
  pclose(pipe);
  const pid_t pid = static_cast<pid_t>(std::atol(pid_line));
  ASSERT_GT(pid, 0);

  std::string err_text;
  ASSERT_TRUE(wait_for(err_path, "listening on 127.0.0.1:", err_text))
      << err_text;
  const std::size_t colon = err_text.rfind(':');
  const int port = std::atoi(err_text.c_str() + colon + 1);
  ASSERT_GT(port, 0) << err_text;

  {
    TestClient client(static_cast<u16>(port));
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.transact("QStartNoAckMode", true), "OK");
    EXPECT_EQ(client.transact("s", false), "S05");
    EXPECT_EQ(client.transact("D", false), "OK");
  }

  // Detached: the guest free-runs, reads the scripted UART pin and opens.
  std::string out_text;
  EXPECT_TRUE(wait_for(out_path, "OPEN", out_text)) << out_text;
  for (int i = 0; i < 500 && ::kill(pid, 0) == 0; ++i) usleep(10'000);
  EXPECT_NE(::kill(pid, 0), 0) << "s4e-run did not exit after detach";

  std::remove(elf.c_str());
  std::remove(out_path.c_str());
  std::remove(err_path.c_str());
}
#endif  // S4E_TOOL_DIR

}  // namespace
}  // namespace s4e::debug
