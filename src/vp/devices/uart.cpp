#include "vp/devices/uart.hpp"

#include "common/strings.hpp"

namespace s4e::vp {

Result<u32> Uart::read(u32 offset, unsigned size) {
  (void)size;
  switch (offset) {
    case kTxData:
      return u32{0};
    case kRxData: {
      if (rx_queue_.empty()) return u32{0xffff'ffff};
      const u32 value = rx_queue_.front();
      rx_queue_.pop_front();
      ++rx_count_;
      return value;
    }
    case kStatus:
      return (rx_queue_.empty() ? 0u : 1u) | 0x2u;
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("uart: read from bad offset 0x%x", offset));
  }
}

Status Uart::write(u32 offset, unsigned size, u32 value) {
  (void)size;
  switch (offset) {
    case kTxData:
      tx_log_.push_back(static_cast<char>(value & 0xff));
      ++tx_count_;
      return Status();
    default:
      return Error(ErrorCode::kOutOfRange,
                   format("uart: write to bad offset 0x%x", offset));
  }
}

void Uart::push_rx(std::string_view data) {
  for (char c : data) rx_queue_.push_back(static_cast<u8>(c));
}

void Uart::reset() {
  tx_log_.clear();
  rx_queue_.clear();
  tx_count_ = 0;
  rx_count_ = 0;
}

void Uart::save_state(StateWriter& out) const {
  out.put_blob(tx_log_.data(), tx_log_.size());
  out.put_u64(rx_queue_.size());
  for (u8 byte : rx_queue_) out.put_u8(byte);
  out.put_u64(tx_count_);
  out.put_u64(rx_count_);
}

void Uart::restore_state(StateReader& in) {
  tx_log_.resize(in.get_blob_size());
  in.get_bytes(tx_log_.data(), tx_log_.size());
  rx_queue_.clear();
  for (u64 i = in.get_u64(); i > 0; --i) rx_queue_.push_back(in.get_u8());
  tx_count_ = in.get_u64();
  rx_count_ = in.get_u64();
}

}  // namespace s4e::vp
