// CLINT-compatible core-local interruptor: per-hart software-interrupt
// bits (msip) and machine timers. mtime is global and advances with
// modelled cycles; each hart has its own mtimecmp bank raising that hart's
// MTIP, and its own msip word raising MSIP.
//
// Register map (byte offsets within the CLINT window, hart index h):
//   0x0000 + 4*h  msip[h]      (bit 0 writable)
//   0x4000 + 8*h  mtimecmp[h]  (lo),  0x4004 + 8*h  (hi)
//   0xbff8        mtime (lo),  0xbffc mtime (hi)
#pragma once

#include <array>

#include "vp/device.hpp"

namespace s4e::vp {

class Clint final : public Device {
 public:
  static constexpr u32 kDefaultBase = 0x0200'0000;
  static constexpr u32 kWindowSize = 0x1'0000;
  static constexpr unsigned kMaxHarts = 8;
  static constexpr u32 kMsipBase = 0x0000;
  static constexpr u32 kMtimecmpBase = 0x4000;
  static constexpr u32 kMtimecmpLo = kMtimecmpBase;      // hart 0
  static constexpr u32 kMtimecmpHi = kMtimecmpBase + 4;  // hart 0
  static constexpr u32 kMtimeLo = 0xbff8;
  static constexpr u32 kMtimeHi = 0xbffc;

  std::string_view name() const noexcept override { return "clint"; }

  Result<u32> read(u32 offset, unsigned size) override;
  Status write(u32 offset, unsigned size, u32 value) override;
  void tick(u64 now) override { mtime_ = now; }
  void reset() override {
    mtime_ = 0;
    mtimecmp_.fill(~u64{0});
    msip_.fill(0);
  }
  void save_state(StateWriter& out) const override {
    out.put_u64(mtime_);
    for (u64 cmp : mtimecmp_) out.put_u64(cmp);
    for (u32 sip : msip_) out.put_u32(sip);
  }
  void restore_state(StateReader& in) override {
    mtime_ = in.get_u64();
    for (u64& cmp : mtimecmp_) cmp = in.get_u64();
    for (u32& sip : msip_) sip = in.get_u32();
  }

  // True while mtime >= mtimecmp[hart] (level-triggered MTIP).
  bool timer_pending(unsigned hart = 0) const noexcept {
    return mtime_ >= mtimecmp_[hart % kMaxHarts];
  }
  // True while msip[hart] bit 0 is set (level-triggered MSIP).
  bool software_pending(unsigned hart = 0) const noexcept {
    return (msip_[hart % kMaxHarts] & 1u) != 0;
  }

  u64 mtime() const noexcept { return mtime_; }
  u64 mtimecmp(unsigned hart = 0) const noexcept {
    return mtimecmp_[hart % kMaxHarts];
  }
  u32 msip(unsigned hart = 0) const noexcept { return msip_[hart % kMaxHarts]; }

 private:
  u64 mtime_ = 0;
  std::array<u64, kMaxHarts> mtimecmp_{};
  std::array<u32, kMaxHarts> msip_{};

 public:
  Clint() { reset(); }
};

}  // namespace s4e::vp
