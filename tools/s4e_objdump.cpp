// s4e-objdump — inspect an ELF produced by s4e-as.
//
//   s4e-objdump file.elf            disassemble .text (default)
//   s4e-objdump -t file.elf         symbol table
//   s4e-objdump --cfg file.elf      Graphviz dump of the reconstructed CFG
//   s4e-objdump --annot file.elf    .loopbound annotations
#include <cstdio>

#include "cfg/cfg.hpp"
#include "elf/elf32.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/rvc.hpp"
#include "tools/tool_util.hpp"

int main(int argc, char** argv) {
  using namespace s4e;
  static constexpr char kUsage[] =
      "usage: s4e-objdump [-t|--cfg|--annot] <file.elf>\n";
  tools::Args args(argc, argv, {}, {"-t", "--cfg", "--annot"});
  if (const int code = tools::standard_flags(args, "s4e-objdump", kUsage);
      code >= 0) {
    return code;
  }
  if (args.positional().empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  auto program = elf::read_elf_file(args.positional()[0]);
  if (!program.ok()) {
    std::fprintf(stderr, "s4e-objdump: %s\n",
                 program.error().to_string().c_str());
    return 1;
  }

  if (args.has("-t")) {
    for (const auto& [name, value] : program->symbols) {
      std::printf("%08x  %s\n", value, name.c_str());
    }
    return 0;
  }
  if (args.has("--annot")) {
    for (const auto& bound : program->loop_bounds) {
      std::printf("loopbound 0x%08x %u\n", bound.address, bound.bound);
    }
    return 0;
  }
  if (args.has("--cfg")) {
    auto cfg = cfg::build_cfg(*program);
    if (!cfg.ok()) {
      std::fprintf(stderr, "s4e-objdump: %s\n",
                   cfg.error().to_string().c_str());
      return 1;
    }
    std::fputs(cfg::to_dot(*cfg).c_str(), stdout);
    return 0;
  }

  // Disassembly of .text with symbol labels.
  const assembler::Section* text = program->find_section(".text");
  if (text == nullptr) {
    std::fprintf(stderr, "s4e-objdump: no .text section\n");
    return 1;
  }
  std::printf("Disassembly of .text (base 0x%08x, entry 0x%08x):\n\n",
              text->base, program->entry);
  u32 offset = 0;
  while (offset + 2 <= text->bytes.size()) {
    const u32 address = text->base + offset;
    for (const auto& [name, value] : program->symbols) {
      if (value == address) std::printf("%s:\n", name.c_str());
    }
    auto half = program->read_half(address);
    if (!half.ok()) break;
    if (isa::is_compressed(static_cast<u16>(*half))) {
      auto instr = isa::decompress(static_cast<u16>(*half));
      if (instr.ok()) {
        std::printf("  %08x:  %04x      %s\n", address,
                    static_cast<u16>(*half),
                    isa::disassemble_at(*instr, address).c_str());
      } else {
        std::printf("  %08x:  %04x      .half\n", address,
                    static_cast<u16>(*half));
      }
      offset += 2;
      continue;
    }
    auto word = program->read_word(address);
    if (!word.ok()) break;
    auto instr = isa::decoder().decode(*word);
    if (instr.ok()) {
      std::printf("  %08x:  %08x  %s\n", address, *word,
                  isa::disassemble_at(*instr, address).c_str());
    } else {
      std::printf("  %08x:  %08x  .word\n", address, *word);
    }
    offset += 4;
  }
  return tools::finish_stdout("s4e-objdump");
}
