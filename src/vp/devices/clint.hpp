// CLINT-compatible machine timer: mtime advances with modelled cycles,
// mtimecmp raises the machine timer interrupt (MTIP).
//
// Register map (byte offsets within the CLINT window):
//   0x4000 mtimecmp (lo), 0x4004 mtimecmp (hi)
//   0xbff8 mtime    (lo), 0xbffc mtime    (hi)
#pragma once

#include "vp/device.hpp"

namespace s4e::vp {

class Clint final : public Device {
 public:
  static constexpr u32 kDefaultBase = 0x0200'0000;
  static constexpr u32 kWindowSize = 0x1'0000;
  static constexpr u32 kMtimecmpLo = 0x4000;
  static constexpr u32 kMtimecmpHi = 0x4004;
  static constexpr u32 kMtimeLo = 0xbff8;
  static constexpr u32 kMtimeHi = 0xbffc;

  std::string_view name() const noexcept override { return "clint"; }

  Result<u32> read(u32 offset, unsigned size) override;
  Status write(u32 offset, unsigned size, u32 value) override;
  void tick(u64 now) override { mtime_ = now; }
  void reset() override {
    mtime_ = 0;
    mtimecmp_ = ~u64{0};
  }
  void save_state(StateWriter& out) const override {
    out.put_u64(mtime_);
    out.put_u64(mtimecmp_);
  }
  void restore_state(StateReader& in) override {
    mtime_ = in.get_u64();
    mtimecmp_ = in.get_u64();
  }

  // True while mtime >= mtimecmp (level-triggered MTIP).
  bool timer_pending() const noexcept { return mtime_ >= mtimecmp_; }

  u64 mtime() const noexcept { return mtime_; }
  u64 mtimecmp() const noexcept { return mtimecmp_; }

 private:
  u64 mtime_ = 0;
  u64 mtimecmp_ = ~u64{0};
};

}  // namespace s4e::vp
