// E7 — static WCET analysis cost and tightness across program size
// (characterizing the aiT substitute itself): analysis wall-time scales
// near-linearly with block count, and the bound-over-observed pessimism
// stays in a narrow band for loop-dominated code.
#include <benchmark/benchmark.h>

#include "asm/assembler.hpp"
#include "common/strings.hpp"
#include "vp/machine.hpp"
#include "wcet/analyzer.hpp"

namespace {

using namespace s4e;

// Generate a program with `kernels` sequential counted-loop kernels — each
// adds blocks and a loop, scaling the CFG size deterministically.
std::string generated_program(unsigned kernels) {
  std::string source = "_start:\n    li a0, 0\n";
  for (unsigned k = 0; k < kernels; ++k) {
    source += format("    li t0, %u\n", 16 + (k % 7));
    source += format("k%u_loop:\n", k);
    // t0 is redefined by every kernel, so the counted-loop pattern cannot
    // prove a bound — annotate, as a real aiT flow would.
    source += format("    .loopbound %u\n", 16 + (k % 7));
    source += format("    addi a0, a0, %u\n", k + 1);
    source += "    slli t2, a0, 1\n";
    source += "    srli t3, t2, 2\n";
    source += format("    beqz t3, k%u_skip\n", k);
    source += "    xor a0, a0, t3\n";
    source += format("k%u_skip:\n", k);
    source += "    addi t0, t0, -1\n";
    source += format("    bnez t0, k%u_loop\n", k);
  }
  source += "    li a7, 93\n    ecall\n";
  return source;
}

void BM_WcetAnalysis(benchmark::State& state) {
  const unsigned kernels = static_cast<unsigned>(state.range(0));
  auto program = assembler::assemble(generated_program(kernels));
  S4E_CHECK(program.ok());
  std::size_t blocks = 0;
  for (auto _ : state) {
    auto analysis = wcet::Analyzer().analyze(*program);
    S4E_CHECK(analysis.ok());
    blocks = analysis->annotated.blocks.size();
    benchmark::DoNotOptimize(analysis->total_wcet);
  }
  state.counters["cfg_blocks"] = static_cast<double>(blocks);
  state.counters["blocks_per_s"] = benchmark::Counter(
      static_cast<double>(blocks) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_WcetAnalysis)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_CfgReconstruction(benchmark::State& state) {
  const unsigned kernels = static_cast<unsigned>(state.range(0));
  auto program = assembler::assemble(generated_program(kernels));
  S4E_CHECK(program.ok());
  for (auto _ : state) {
    auto cfg = cfg::build_cfg(*program);
    S4E_CHECK(cfg.ok());
    benchmark::DoNotOptimize(cfg->functions.size());
  }
}

BENCHMARK(BM_CfgReconstruction)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Assembler(benchmark::State& state) {
  const unsigned kernels = static_cast<unsigned>(state.range(0));
  const std::string source = generated_program(kernels);
  for (auto _ : state) {
    auto program = assembler::assemble(source);
    S4E_CHECK(program.ok());
    benchmark::DoNotOptimize(program->image_size());
  }
  state.counters["src_bytes"] = static_cast<double>(source.size());
}

BENCHMARK(BM_Assembler)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Tightness table: pessimism vs program size.
  std::printf("\n[E7] bound tightness across generated program sizes:\n");
  std::printf("  %8s %8s %12s %12s %10s\n", "kernels", "blocks", "observed",
              "bound", "bound/obs");
  for (unsigned kernels : {4u, 16u, 64u, 256u}) {
    auto program = assembler::assemble(generated_program(kernels));
    S4E_CHECK(program.ok());
    auto analysis = wcet::Analyzer().analyze(*program);
    S4E_CHECK(analysis.ok());
    vp::Machine machine;
    S4E_CHECK(machine.load_program(*program).ok());
    auto run = machine.run();
    S4E_CHECK(run.normal_exit());
    std::printf("  %8u %8zu %12llu %12llu %10.2f\n", kernels,
                analysis->annotated.blocks.size(),
                static_cast<unsigned long long>(run.cycles),
                static_cast<unsigned long long>(analysis->total_wcet),
                static_cast<double>(analysis->total_wcet) /
                    static_cast<double>(run.cycles));
    S4E_CHECK_MSG(analysis->total_wcet >= run.cycles,
                  "bound violated in E7 sweep");
  }
  return 0;
}
